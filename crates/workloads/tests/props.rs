//! Property-based tests of the real benchmark kernels.

use proptest::prelude::*;
use vgrid_workloads::counter::OpCounter;
use vgrid_workloads::einstein::fft;
use vgrid_workloads::nbench::assignment;
use vgrid_workloads::nbench::emfloat::SoftFloat;
use vgrid_workloads::nbench::lu;
use vgrid_workloads::nbench::strsort::merge_sort_strings;

proptest! {
    /// Soft-float arithmetic tracks hardware doubles within format
    /// precision, for arbitrary inputs away from the extremes.
    #[test]
    fn softfloat_tracks_hardware(a in -1e12f64..1e12, b in -1e12f64..1e12) {
        let mut ops = OpCounter::new();
        let (sa, sb) = (SoftFloat::from_f64(a), SoftFloat::from_f64(b));
        let tol = |x: f64| 1e-6 * (1.0 + x.abs());
        prop_assert!((sa.add(sb, &mut ops).to_f64() - (a + b)).abs() <= tol(a + b));
        prop_assert!((sa.sub(sb, &mut ops).to_f64() - (a - b)).abs() <= tol(a - b));
        prop_assert!((sa.mul(sb, &mut ops).to_f64() - (a * b)).abs() <= tol(a * b).max(1e-6 * (a * b).abs()));
        if b.abs() > 1e-6 {
            prop_assert!((sa.div(sb, &mut ops).to_f64() - (a / b)).abs() <= tol(a / b));
        }
    }

    /// FFT then inverse-FFT-by-conjugation returns the input.
    #[test]
    fn fft_inverts(xs in proptest::collection::vec(-100.0f64..100.0, 1..6)) {
        // Build a power-of-two signal from the seed values.
        let n = 64usize;
        let mut re: Vec<f64> = (0..n)
            .map(|i| xs[i % xs.len()] * ((i as f64) * 0.1).cos())
            .collect();
        let orig = re.clone();
        let mut im = vec![0.0; n];
        let mut ops = OpCounter::new();
        fft(&mut re, &mut im, &mut ops);
        // Inverse via conjugation: conj -> fft -> conj -> /n.
        for v in im.iter_mut() { *v = -*v; }
        fft(&mut re, &mut im, &mut ops);
        for k in 0..n {
            let back = re[k] / n as f64;
            prop_assert!((back - orig[k]).abs() < 1e-9, "k={} {} vs {}", k, back, orig[k]);
        }
    }

    /// Parseval: the FFT preserves total energy (scaled by n).
    #[test]
    fn fft_preserves_energy(seed in any::<u64>()) {
        use vgrid_simcore::SimRng;
        let mut rng = SimRng::new(seed);
        let n = 128usize;
        let re0: Vec<f64> = (0..n).map(|_| rng.range_f64(-1.0, 1.0)).collect();
        let im0: Vec<f64> = (0..n).map(|_| rng.range_f64(-1.0, 1.0)).collect();
        let (mut re, mut im) = (re0.clone(), im0.clone());
        let mut ops = OpCounter::new();
        fft(&mut re, &mut im, &mut ops);
        let e_time: f64 = re0.iter().zip(&im0).map(|(r, i)| r * r + i * i).sum(); // simlint: allow(float-fold-order) -- test statistic over a fixed sample order
        let e_freq: f64 = re.iter().zip(&im).map(|(r, i)| r * r + i * i).sum(); // simlint: allow(float-fold-order) -- test statistic over a fixed sample order
        prop_assert!((e_freq - n as f64 * e_time).abs() < 1e-6 * (1.0 + e_freq.abs()));
    }

    /// The Hungarian solver's result is never beaten by a random
    /// permutation.
    #[test]
    fn assignment_beats_random_permutations(
        n in 2usize..8,
        seed in any::<u64>(),
    ) {
        use vgrid_simcore::SimRng;
        let mut rng = SimRng::new(seed);
        let costs: Vec<Vec<i64>> = (0..n)
            .map(|_| (0..n).map(|_| rng.next_below(1000) as i64).collect())
            .collect();
        let mut ops = OpCounter::new();
        let (_, best) = assignment::solve(&costs, &mut ops);
        #[allow(clippy::needless_range_loop)]
        for _ in 0..20 {
            // Fisher-Yates a random permutation.
            let mut perm: Vec<usize> = (0..n).collect();
            for i in (1..n).rev() {
                let j = rng.next_below(i as u64 + 1) as usize;
                perm.swap(i, j);
            }
            let cost: i64 = perm.iter().enumerate().map(|(i, &j)| costs[i][j]).sum();
            prop_assert!(best <= cost, "solver {} beaten by {}", best, cost);
        }
    }

    /// LU solves satisfy A x = b for arbitrary diagonally-dominant A.
    #[test]
    fn lu_residuals_are_tiny(n in 2usize..20, seed in any::<u64>()) {
        use vgrid_simcore::SimRng;
        let mut rng = SimRng::new(seed);
        let a = lu::Matrix::from_fn(n, |i, j| {
            if i == j { n as f64 + 1.5 } else { rng.range_f64(-1.0, 1.0) }
        });
        let b: Vec<f64> = (0..n).map(|_| rng.range_f64(-10.0, 10.0)).collect();
        let mut ops = OpCounter::new();
        let f = lu::decompose(&a, &mut ops).expect("non-singular");
        let x = lu::solve(&f, &b, &mut ops);
        for (i, &bi) in b.iter().enumerate() {
            let ax: f64 = (0..n).map(|j| a.data[i * n + j] * x[j]).sum(); // simlint: allow(float-fold-order) -- fixed-index dot product in a test assertion
            prop_assert!((ax - bi).abs() < 1e-8);
        }
    }

    /// String merge sort produces a sorted permutation for arbitrary
    /// string pools.
    #[test]
    fn strsort_sorts_arbitrary_pools(
        pool in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..20), 0..60)
    ) {
        let mut ops = OpCounter::new();
        let order = merge_sort_strings(&pool, &mut ops);
        prop_assert_eq!(order.len(), pool.len());
        let mut seen = vec![false; pool.len()];
        for &i in &order {
            prop_assert!(!seen[i as usize], "permutation");
            seen[i as usize] = true;
        }
        for w in order.windows(2) {
            prop_assert!(pool[w[0] as usize] <= pool[w[1] as usize]);
        }
    }
}
