//! The tree itself must satisfy the determinism contract: this is the
//! same check `cargo run -p simlint` / `scripts/verify.sh` gate on,
//! pinned as a test so `cargo test -q` catches regressions too.

use std::path::PathBuf;

#[test]
fn repo_is_lint_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let files = simlint::collect_tree(&root).expect("walk workspace tree");
    assert!(
        files.iter().any(|f| f.path == "crates/simlint/src/lib.rs"),
        "tree walk should reach simlint itself; got {} files",
        files.len()
    );
    let diags = simlint::lint(&files);
    assert!(
        diags.is_empty(),
        "determinism lint violations:\n{}",
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
