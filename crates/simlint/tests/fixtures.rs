//! Fixture corpus: every rule must fire on a seeded violation and stay
//! quiet when an allow-pragma (or an exempt path) sanctions it. The
//! fixtures live in string literals, which the scanner blanks out —
//! so this file itself stays lint-clean when simlint walks the repo.

use simlint::{lint, Diagnostic, Rule, SourceFile};

fn lint_one(path: &str, text: &str) -> Vec<Diagnostic> {
    lint(&[SourceFile::new(path, text)])
}

fn rules_of(diags: &[Diagnostic]) -> Vec<Rule> {
    diags.iter().map(|d| d.rule).collect()
}

// ---- hash-collections -------------------------------------------------

#[test]
fn hash_collections_fires_in_sim_crate() {
    let diags = lint_one(
        "crates/os/tests/fix.rs",
        r#"
use std::collections::HashMap;
fn f() -> HashSet<u32> { todo!() }
"#,
    );
    assert_eq!(
        rules_of(&diags),
        vec![Rule::HashCollections, Rule::HashCollections]
    );
    assert_eq!(diags[0].line, 2);
    assert_eq!(diags[1].line, 3);
}

#[test]
fn hash_collections_pragma_suppresses() {
    let diags = lint_one(
        "crates/os/tests/fix.rs",
        r#"
// simlint: allow(hash-collections) -- test-only tally, order never observed
use std::collections::HashMap;
let m = HashMap::new(); // simlint: allow(hash-collections) -- same tally
"#,
    );
    assert!(diags.is_empty(), "unexpected: {diags:?}");
}

#[test]
fn hash_collections_ignores_non_sim_crates_and_prose() {
    // Not a sim crate: the bench harness may hash freely.
    let diags = lint_one(
        "crates/bench/benches/fix.rs",
        "use std::collections::HashMap;\n",
    );
    assert!(diags.is_empty());
    // Comment prose and string literals never fire.
    let diags = lint_one(
        "crates/os/tests/fix.rs",
        "// HashMap is banned here\nlet s = \"HashMap\";\n",
    );
    assert!(diags.is_empty(), "unexpected: {diags:?}");
}

// ---- wall-clock -------------------------------------------------------

#[test]
fn wall_clock_fires_everywhere_but_the_shims() {
    let bad = "let t = std::time::Instant::now();\nlet s = SystemTime::now();\n";
    let diags = lint_one("crates/machine/tests/fix.rs", bad);
    assert_eq!(rules_of(&diags), vec![Rule::WallClock, Rule::WallClock]);
    // The criterion and timeref shims are the sanctioned exceptions.
    assert!(lint_one("crates/criterion/tests/fix.rs", bad).is_empty());
    assert!(lint_one("crates/timeref/tests/fix.rs", bad).is_empty());
}

#[test]
fn wall_clock_pragma_suppresses() {
    let diags = lint_one(
        "src/bin/fix.rs",
        r#"
// simlint: allow(wall-clock) -- CLI progress display only, not measurement
let t = std::time::Instant::now();
"#,
    );
    assert!(diags.is_empty(), "unexpected: {diags:?}");
}

// ---- ambient-entropy --------------------------------------------------

#[test]
fn ambient_entropy_fires_outside_the_rng_shim() {
    let diags = lint_one(
        "tests/fix.rs",
        "let x = rand::thread_rng();\nlet y = OsRng;\nlet z = getrandom();\n",
    );
    assert_eq!(
        rules_of(&diags),
        vec![
            Rule::AmbientEntropy,
            Rule::AmbientEntropy,
            Rule::AmbientEntropy
        ]
    );
}

#[test]
fn ambient_entropy_allows_the_rng_shim_itself() {
    let files = [
        SourceFile::new(
            "crates/simcore/src/lib.rs",
            "#![forbid(unsafe_code)]\npub mod rng;\n",
        ),
        SourceFile::new(
            "crates/simcore/src/rng.rs",
            "// only the shim may even name thread_rng\nfn no_thread_rng_here() {}\n",
        ),
    ];
    assert!(lint(&files).is_empty());
}

#[test]
fn ambient_entropy_pragma_suppresses() {
    let diags = lint_one(
        "tests/fix.rs",
        "let x = thread_rng(); // simlint: allow(ambient-entropy) -- doc example, never run\n",
    );
    assert!(diags.is_empty(), "unexpected: {diags:?}");
}

// ---- unstable-sort ----------------------------------------------------

#[test]
fn unstable_sort_fires_on_all_variants() {
    let diags = lint_one(
        "crates/simcore/tests/fix.rs",
        "v.sort_unstable();\nv.sort_unstable_by(cmp);\nv.sort_unstable_by_key(|x| x.0);\n",
    );
    assert_eq!(diags.len(), 3);
    assert!(diags.iter().all(|d| d.rule == Rule::UnstableSort));
}

#[test]
fn unstable_sort_pragma_suppresses() {
    let diags = lint_one(
        "crates/simcore/tests/fix.rs",
        "// simlint: allow(unstable-sort) -- u64 keys are total\nv.sort_unstable();\n",
    );
    assert!(diags.is_empty(), "unexpected: {diags:?}");
}

// ---- substrate-collections --------------------------------------------

#[test]
fn substrate_collections_fires_in_substrate_files() {
    // Substrate files are module files, so lint them next to a crate
    // root that declares them (keeps the stray-file rule quiet).
    let root = SourceFile::new(
        "crates/grid/src/lib.rs",
        "#![forbid(unsafe_code)]\nmod sim;\nmod archetype;\nmod hydrate;\nmod fastforward;\n",
    );
    for path in [
        "crates/grid/src/sim.rs",
        "crates/grid/src/archetype.rs",
        "crates/grid/src/hydrate.rs",
        "crates/grid/src/fastforward.rs",
    ] {
        let fixture = SourceFile::new(
            path,
            "use std::collections::BTreeMap;\nlet s: BTreeSet<u32> = Default::default();\n",
        );
        let diags = lint(&[root.clone(), fixture]);
        assert_eq!(
            rules_of(&diags),
            vec![Rule::SubstrateCollections, Rule::SubstrateCollections],
            "at {path}"
        );
    }
}

#[test]
fn substrate_collections_ignores_other_files_and_pragma_suppresses() {
    // DetMap's own implementation (and any non-substrate file) may wrap
    // a BTreeMap freely.
    let diags = lint(&[
        SourceFile::new(
            "crates/simcore/src/lib.rs",
            "#![forbid(unsafe_code)]\nmod detmap;\n",
        ),
        SourceFile::new(
            "crates/simcore/src/detmap.rs",
            "pub struct DetMap<K, V>(BTreeMap<K, V>);\n",
        ),
    ]);
    assert!(diags.is_empty(), "unexpected: {diags:?}");
    let diags = lint(&[
        SourceFile::new("crates/grid/src/lib.rs", "#![forbid(unsafe_code)]\nmod sim;\n"),
        SourceFile::new(
            "crates/grid/src/sim.rs",
            "// simlint: allow(substrate-collections) -- local scratch, never iterated\nlet m = BTreeMap::new();\n",
        ),
    ]);
    assert!(diags.is_empty(), "unexpected: {diags:?}");
}

// ---- stray-file -------------------------------------------------------

#[test]
fn stray_file_catches_undeclared_and_non_rs_files() {
    let files = [
        SourceFile::new(
            "crates/os/src/lib.rs",
            "#![forbid(unsafe_code)]\npub mod good;\n// mod dead;\n",
        ),
        SourceFile::new("crates/os/src/good.rs", "pub fn ok() {}\n"),
        SourceFile::new("crates/os/src/dead.rs", "pub fn gone() {}\n"),
        SourceFile {
            path: "crates/os/src/system.rs.memtest".to_string(),
            text: None,
        },
    ];
    let diags = lint(&files);
    assert_eq!(rules_of(&diags), vec![Rule::StrayFile, Rule::StrayFile]);
    // A commented-out `mod dead;` does not count as a reference.
    assert_eq!(diags[0].path, "crates/os/src/dead.rs");
    assert_eq!(diags[1].path, "crates/os/src/system.rs.memtest");
}

#[test]
fn stray_file_understands_mod_rs_and_roots() {
    let files = [
        SourceFile::new(
            "crates/workloads/src/lib.rs",
            "#![forbid(unsafe_code)]\npub mod nbench;\n",
        ),
        SourceFile::new("crates/workloads/src/nbench/mod.rs", "pub mod lu;\n"),
        SourceFile::new("crates/workloads/src/nbench/lu.rs", "pub fn lu() {}\n"),
        // Compilation roots cargo discovers on its own need no `mod`.
        SourceFile::new("crates/workloads/src/main.rs", "fn main() {}\n"),
        SourceFile::new("src/bin/tool.rs", "fn main() {}\n"),
    ];
    assert!(lint(&files).is_empty());
}

// ---- forbid-unsafe ----------------------------------------------------

#[test]
fn forbid_unsafe_requires_the_attribute_on_crate_roots() {
    let diags = lint_one("crates/grid/src/lib.rs", "pub fn f() {}\n");
    assert_eq!(rules_of(&diags), vec![Rule::ForbidUnsafe]);
    let diags = lint_one(
        "crates/grid/src/lib.rs",
        "//! docs\n\n#![forbid(unsafe_code)]\npub fn f() {}\n",
    );
    assert!(diags.is_empty());
    // Non-root files are not required to repeat it.
    assert!(lint_one("crates/grid/tests/fix.rs", "pub fn f() {}\n").is_empty());
}

// ---- pragma hygiene ---------------------------------------------------

#[test]
fn malformed_pragmas_are_diagnosed() {
    // Unknown rule id.
    let diags = lint_one("tests/fix.rs", "// simlint: allow(nonsense) -- why\n");
    assert_eq!(rules_of(&diags), vec![Rule::BadPragma]);
    // File-scoped rules cannot be allowed per line.
    let diags = lint_one("tests/fix.rs", "// simlint: allow(stray-file) -- nope\n");
    assert_eq!(rules_of(&diags), vec![Rule::BadPragma]);
    // Missing justification.
    let diags = lint_one("tests/fix.rs", "// simlint: allow(unstable-sort)\n");
    assert_eq!(rules_of(&diags), vec![Rule::BadPragma]);
    // Missing justification does not suppress the violation either.
    let diags = lint_one(
        "crates/os/tests/fix.rs",
        "// simlint: allow(unstable-sort)\nv.sort_unstable();\n",
    );
    assert_eq!(rules_of(&diags), vec![Rule::BadPragma, Rule::UnstableSort]);
}

#[test]
fn pragma_only_reaches_its_own_and_next_line() {
    let diags = lint_one(
        "crates/os/tests/fix.rs",
        r#"
// simlint: allow(unstable-sort) -- only covers the next line
v.sort_unstable();
w.sort_unstable();
"#,
    );
    assert_eq!(rules_of(&diags), vec![Rule::UnstableSort]);
    assert_eq!(diags[0].line, 4);
}
