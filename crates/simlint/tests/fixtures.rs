//! Fixture corpus: every rule must fire on a seeded violation and stay
//! quiet when an allow-pragma (or an exempt path) sanctions it. The
//! fixtures live in string literals, which the scanner blanks out —
//! so this file itself stays lint-clean when simlint walks the repo.

use simlint::{lint, Diagnostic, Rule, SourceFile};

fn lint_one(path: &str, text: &str) -> Vec<Diagnostic> {
    lint(&[SourceFile::new(path, text)])
}

fn rules_of(diags: &[Diagnostic]) -> Vec<Rule> {
    diags.iter().map(|d| d.rule).collect()
}

// ---- hash-collections -------------------------------------------------

#[test]
fn hash_collections_fires_in_sim_crate() {
    let diags = lint_one(
        "crates/os/tests/fix.rs",
        r#"
use std::collections::HashMap;
fn f() -> HashSet<u32> { todo!() }
"#,
    );
    assert_eq!(
        rules_of(&diags),
        vec![Rule::HashCollections, Rule::HashCollections]
    );
    assert_eq!(diags[0].line, 2);
    assert_eq!(diags[1].line, 3);
}

#[test]
fn hash_collections_pragma_suppresses() {
    let diags = lint_one(
        "crates/os/tests/fix.rs",
        r#"
// simlint: allow(hash-collections) -- test-only tally, order never observed
use std::collections::HashMap;
let m = HashMap::new(); // simlint: allow(hash-collections) -- same tally
"#,
    );
    assert!(diags.is_empty(), "unexpected: {diags:?}");
}

#[test]
fn hash_collections_ignores_non_sim_crates_and_prose() {
    // Not a sim crate: the bench harness may hash freely.
    let diags = lint_one(
        "crates/bench/benches/fix.rs",
        "use std::collections::HashMap;\n",
    );
    assert!(diags.is_empty());
    // Comment prose and string literals never fire.
    let diags = lint_one(
        "crates/os/tests/fix.rs",
        "// HashMap is banned here\nlet s = \"HashMap\";\n",
    );
    assert!(diags.is_empty(), "unexpected: {diags:?}");
}

// ---- wall-clock -------------------------------------------------------

#[test]
fn wall_clock_fires_everywhere_but_the_shims() {
    let bad = "let t = std::time::Instant::now();\nlet s = SystemTime::now();\n";
    let diags = lint_one("crates/machine/tests/fix.rs", bad);
    assert_eq!(rules_of(&diags), vec![Rule::WallClock, Rule::WallClock]);
    // The criterion and timeref shims are the sanctioned exceptions.
    assert!(lint_one("crates/criterion/tests/fix.rs", bad).is_empty());
    assert!(lint_one("crates/timeref/tests/fix.rs", bad).is_empty());
}

#[test]
fn wall_clock_pragma_suppresses() {
    let diags = lint_one(
        "src/bin/fix.rs",
        r#"
// simlint: allow(wall-clock) -- CLI progress display only, not measurement
let t = std::time::Instant::now();
"#,
    );
    assert!(diags.is_empty(), "unexpected: {diags:?}");
}

// ---- ambient-entropy --------------------------------------------------

#[test]
fn ambient_entropy_fires_outside_the_rng_shim() {
    let diags = lint_one(
        "tests/fix.rs",
        "let x = rand::thread_rng();\nlet y = OsRng;\nlet z = getrandom();\n",
    );
    assert_eq!(
        rules_of(&diags),
        vec![
            Rule::AmbientEntropy,
            Rule::AmbientEntropy,
            Rule::AmbientEntropy
        ]
    );
}

#[test]
fn ambient_entropy_allows_the_rng_shim_itself() {
    let files = [
        SourceFile::new(
            "crates/simcore/src/lib.rs",
            "#![forbid(unsafe_code)]\npub mod rng;\n",
        ),
        SourceFile::new(
            "crates/simcore/src/rng.rs",
            "// only the shim may even name thread_rng\nfn no_thread_rng_here() {}\n",
        ),
    ];
    assert!(lint(&files).is_empty());
}

#[test]
fn ambient_entropy_pragma_suppresses() {
    let diags = lint_one(
        "tests/fix.rs",
        "let x = thread_rng(); // simlint: allow(ambient-entropy) -- doc example, never run\n",
    );
    assert!(diags.is_empty(), "unexpected: {diags:?}");
}

// ---- unstable-sort ----------------------------------------------------

#[test]
fn unstable_sort_fires_on_all_variants() {
    let diags = lint_one(
        "crates/simcore/tests/fix.rs",
        "v.sort_unstable();\nv.sort_unstable_by(cmp);\nv.sort_unstable_by_key(|x| x.0);\n",
    );
    assert_eq!(diags.len(), 3);
    assert!(diags.iter().all(|d| d.rule == Rule::UnstableSort));
}

#[test]
fn unstable_sort_pragma_suppresses() {
    let diags = lint_one(
        "crates/simcore/tests/fix.rs",
        "// simlint: allow(unstable-sort) -- u64 keys are total\nv.sort_unstable();\n",
    );
    assert!(diags.is_empty(), "unexpected: {diags:?}");
}

// ---- substrate-collections --------------------------------------------

#[test]
fn substrate_collections_fires_in_substrate_files() {
    // Substrate files are module files, so lint them next to a crate
    // root that declares them (keeps the stray-file rule quiet).
    let root = SourceFile::new(
        "crates/grid/src/lib.rs",
        "#![forbid(unsafe_code)]\nmod sim;\nmod archetype;\nmod hydrate;\nmod fastforward;\n",
    );
    for path in [
        "crates/grid/src/sim.rs",
        "crates/grid/src/archetype.rs",
        "crates/grid/src/hydrate.rs",
        "crates/grid/src/fastforward.rs",
    ] {
        let fixture = SourceFile::new(
            path,
            "use std::collections::BTreeMap;\nlet s: BTreeSet<u32> = Default::default();\n",
        );
        let diags = lint(&[root.clone(), fixture]);
        assert_eq!(
            rules_of(&diags),
            vec![Rule::SubstrateCollections, Rule::SubstrateCollections],
            "at {path}"
        );
    }
}

#[test]
fn substrate_collections_ignores_other_files_and_pragma_suppresses() {
    // DetMap's own implementation (and any non-substrate file) may wrap
    // a BTreeMap freely.
    let diags = lint(&[
        SourceFile::new(
            "crates/simcore/src/lib.rs",
            "#![forbid(unsafe_code)]\nmod detmap;\n",
        ),
        SourceFile::new(
            "crates/simcore/src/detmap.rs",
            "pub struct DetMap<K, V>(BTreeMap<K, V>);\n",
        ),
    ]);
    assert!(diags.is_empty(), "unexpected: {diags:?}");
    let diags = lint(&[
        SourceFile::new("crates/grid/src/lib.rs", "#![forbid(unsafe_code)]\nmod sim;\n"),
        SourceFile::new(
            "crates/grid/src/sim.rs",
            "// simlint: allow(substrate-collections) -- local scratch, never iterated\nlet m = BTreeMap::new();\n",
        ),
    ]);
    assert!(diags.is_empty(), "unexpected: {diags:?}");
}

// ---- stray-file -------------------------------------------------------

#[test]
fn stray_file_catches_undeclared_and_non_rs_files() {
    let files = [
        SourceFile::new(
            "crates/os/src/lib.rs",
            "#![forbid(unsafe_code)]\npub mod good;\n// mod dead;\n",
        ),
        SourceFile::new("crates/os/src/good.rs", "pub fn ok() {}\n"),
        SourceFile::new("crates/os/src/dead.rs", "pub fn gone() {}\n"),
        SourceFile {
            path: "crates/os/src/system.rs.memtest".to_string(),
            text: None,
        },
    ];
    let diags = lint(&files);
    assert_eq!(rules_of(&diags), vec![Rule::StrayFile, Rule::StrayFile]);
    // A commented-out `mod dead;` does not count as a reference.
    assert_eq!(diags[0].path, "crates/os/src/dead.rs");
    assert_eq!(diags[1].path, "crates/os/src/system.rs.memtest");
}

#[test]
fn stray_file_understands_mod_rs_and_roots() {
    let files = [
        SourceFile::new(
            "crates/workloads/src/lib.rs",
            "#![forbid(unsafe_code)]\npub mod nbench;\n",
        ),
        SourceFile::new("crates/workloads/src/nbench/mod.rs", "pub mod lu;\n"),
        SourceFile::new("crates/workloads/src/nbench/lu.rs", "pub fn lu() {}\n"),
        // Compilation roots cargo discovers on its own need no `mod`.
        SourceFile::new("crates/workloads/src/main.rs", "fn main() {}\n"),
        SourceFile::new("src/bin/tool.rs", "fn main() {}\n"),
    ];
    assert!(lint(&files).is_empty());
}

// ---- forbid-unsafe ----------------------------------------------------

#[test]
fn forbid_unsafe_requires_the_attribute_on_crate_roots() {
    let diags = lint_one("crates/grid/src/lib.rs", "pub fn f() {}\n");
    assert_eq!(rules_of(&diags), vec![Rule::ForbidUnsafe]);
    let diags = lint_one(
        "crates/grid/src/lib.rs",
        "//! docs\n\n#![forbid(unsafe_code)]\npub fn f() {}\n",
    );
    assert!(diags.is_empty());
    // Non-root files are not required to repeat it.
    assert!(lint_one("crates/grid/tests/fix.rs", "pub fn f() {}\n").is_empty());
}

// ---- pragma hygiene ---------------------------------------------------

#[test]
fn malformed_pragmas_are_diagnosed() {
    // Unknown rule id.
    let diags = lint_one("tests/fix.rs", "// simlint: allow(nonsense) -- why\n");
    assert_eq!(rules_of(&diags), vec![Rule::BadPragma]);
    // File-scoped rules cannot be allowed per line.
    let diags = lint_one("tests/fix.rs", "// simlint: allow(stray-file) -- nope\n");
    assert_eq!(rules_of(&diags), vec![Rule::BadPragma]);
    // Missing justification.
    let diags = lint_one("tests/fix.rs", "// simlint: allow(unstable-sort)\n");
    assert_eq!(rules_of(&diags), vec![Rule::BadPragma]);
    // Missing justification does not suppress the violation either.
    let diags = lint_one(
        "crates/os/tests/fix.rs",
        "// simlint: allow(unstable-sort)\nv.sort_unstable();\n",
    );
    assert_eq!(rules_of(&diags), vec![Rule::BadPragma, Rule::UnstableSort]);
}

#[test]
fn pragma_only_reaches_its_own_and_next_line() {
    let diags = lint_one(
        "crates/os/tests/fix.rs",
        r#"
// simlint: allow(unstable-sort) -- only covers the next line
v.sort_unstable();
w.sort_unstable();
"#,
    );
    assert_eq!(rules_of(&diags), vec![Rule::UnstableSort]);
    assert_eq!(diags[0].line, 4);
}

// ---- global-state-registry --------------------------------------------

/// Synthetic registry naming the two fast-forward locks with their
/// canonical ranks, for the shared-state fixtures below.
const REG_FF: &str = r#"
[[global]]
name  = "SEGMENT_MEMO"
path  = "crates/grid/src/fastforward.rs"
owner = "grid::fastforward"
kind  = "mutex"
rank  = 40
reset = "grid::fastforward::reset_all"

[[global]]
name  = "TRAJECTORIES"
path  = "crates/grid/src/fastforward.rs"
owner = "grid::fastforward"
kind  = "mutex"
rank  = 60
reset = "grid::fastforward::reset_all"
"#;

fn ff_root() -> SourceFile {
    SourceFile::new(
        "crates/grid/src/lib.rs",
        "#![forbid(unsafe_code)]\npub mod fastforward;\n",
    )
}

fn ff_file(body: &str) -> SourceFile {
    SourceFile::new(
        "crates/grid/src/fastforward.rs",
        &format!(
            "static SEGMENT_MEMO: Mutex<Option<u32>> = Mutex::new(None);\n\
             static TRAJECTORIES: Mutex<Option<u32>> = Mutex::new(None);\n{body}"
        ),
    )
}

#[test]
fn unregistered_global_fails() {
    // The acceptance fixture: an interior-mutable static in a sim
    // crate with no GLOBALS.toml entry must fail the lint (exit 1).
    let files = [
        SourceFile::new("GLOBALS.toml", REG_FF),
        ff_root(),
        ff_file("static ROGUE: Mutex<u32> = Mutex::new(0);\n"),
    ];
    let diags = lint(&files);
    assert_eq!(rules_of(&diags), vec![Rule::GlobalStateRegistry]);
    assert!(diags[0].message.contains("ROGUE"), "{diags:?}");
    assert_eq!(diags[0].line, 3);
}

#[test]
fn registry_entry_without_a_static_fails() {
    // Reverse direction: a stale registry entry is itself an error.
    let files = [
        SourceFile::new("GLOBALS.toml", REG_FF),
        ff_root(),
        SourceFile::new(
            "crates/grid/src/fastforward.rs",
            "static SEGMENT_MEMO: Mutex<Option<u32>> = Mutex::new(None);\n",
        ),
    ];
    let diags = lint(&files);
    assert_eq!(rules_of(&diags), vec![Rule::GlobalStateRegistry]);
    assert_eq!(diags[0].path, "GLOBALS.toml");
    assert!(diags[0].message.contains("TRAJECTORIES"), "{diags:?}");
}

#[test]
fn registry_kind_mismatch_fails() {
    let files = [
        SourceFile::new("GLOBALS.toml", REG_FF),
        ff_root(),
        SourceFile::new(
            "crates/grid/src/fastforward.rs",
            "static SEGMENT_MEMO: AtomicU64 = AtomicU64::new(0);\n\
             static TRAJECTORIES: Mutex<Option<u32>> = Mutex::new(None);\n",
        ),
    ];
    let diags = lint(&files);
    assert_eq!(rules_of(&diags), vec![Rule::GlobalStateRegistry]);
    assert!(
        diags[0].message.contains("`atomic`") && diags[0].message.contains("`mutex`"),
        "{diags:?}"
    );
}

#[test]
fn registered_globals_are_clean_and_plain_statics_are_exempt() {
    let files = [
        SourceFile::new("GLOBALS.toml", REG_FF),
        ff_root(),
        // A plain const-like static carries no interior mutability and
        // needs no registration.
        ff_file("static TABLE: [u32; 4] = [1, 2, 3, 4];\n"),
    ];
    assert!(lint(&files).is_empty(), "{:?}", lint(&files));
}

#[test]
fn malformed_registry_is_diagnosed() {
    let files = [
        SourceFile::new(
            "GLOBALS.toml",
            "[[global]]\nname = \"X\"\npath = \"crates/grid/src/lib.rs\"\nowner = \"g\"\nkind = \"mutex\"\nreset = \"none\"\n",
        ),
        ff_root(),
    ];
    let diags = lint(&files);
    // Missing rank on a lockable kind, plus the stale-entry check.
    assert!(diags
        .iter()
        .any(|d| d.rule == Rule::GlobalStateRegistry && d.message.contains("rank")));
}

// ---- lock-order -------------------------------------------------------

#[test]
fn seeded_lock_order_inversion_fails() {
    // The acceptance fixture: acquiring SEGMENT_MEMO (rank 40) while
    // TRAJECTORIES (rank 60) is held is a rank inversion.
    let files = [
        SourceFile::new("GLOBALS.toml", REG_FF),
        ff_root(),
        ff_file(
            "fn bad() {\n    let t = TRAJECTORIES.lock().expect(\"t\");\n    let s = SEGMENT_MEMO.lock().expect(\"s\");\n}\n",
        ),
    ];
    let diags = lint(&files);
    assert_eq!(rules_of(&diags), vec![Rule::LockOrder]);
    assert!(diags[0].message.contains("inversion"), "{diags:?}");
    assert_eq!(diags[0].line, 5);
}

#[test]
fn rank_ordered_nesting_is_clean() {
    let files = [
        SourceFile::new("GLOBALS.toml", REG_FF),
        ff_root(),
        ff_file(
            "fn good() {\n    let s = SEGMENT_MEMO.lock().expect(\"s\");\n    let t = TRAJECTORIES.lock().expect(\"t\");\n}\n",
        ),
    ];
    assert!(lint(&files).is_empty(), "{:?}", lint(&files));
}

#[test]
fn released_guard_permits_reacquisition() {
    // Scope exit and explicit drop() both release a hold, so the
    // lock-then-relock idiom of the real caches stays clean.
    let files = [
        SourceFile::new("GLOBALS.toml", REG_FF),
        ff_root(),
        ff_file(
            "fn scoped() {\n    {\n        let s = SEGMENT_MEMO.lock().expect(\"s\");\n    }\n    let s = SEGMENT_MEMO.lock().expect(\"s\");\n}\n\
             fn dropped() {\n    let t = TRAJECTORIES.lock().expect(\"t\");\n    drop(t);\n    let s = SEGMENT_MEMO.lock().expect(\"s\");\n}\n",
        ),
    ];
    assert!(lint(&files).is_empty(), "{:?}", lint(&files));
}

#[test]
fn self_reacquisition_is_a_deadlock() {
    let files = [
        SourceFile::new("GLOBALS.toml", REG_FF),
        ff_root(),
        ff_file(
            "fn twice() {\n    let a = SEGMENT_MEMO.lock().expect(\"a\");\n    let b = SEGMENT_MEMO.lock().expect(\"b\");\n}\n",
        ),
    ];
    let diags = lint(&files);
    assert_eq!(rules_of(&diags), vec![Rule::LockOrder]);
    assert!(diags[0].message.contains("self-deadlock"), "{diags:?}");
}

#[test]
fn lock_order_pragma_suppresses() {
    let files = [
        SourceFile::new("GLOBALS.toml", REG_FF),
        ff_root(),
        ff_file(
            "fn bad() {\n    let t = TRAJECTORIES.lock().expect(\"t\");\n    // simlint: allow(lock-order) -- fixture: inversion is unreachable here\n    let s = SEGMENT_MEMO.lock().expect(\"s\");\n}\n",
        ),
    ];
    assert!(lint(&files).is_empty(), "{:?}", lint(&files));
}

// ---- send-clean -------------------------------------------------------

#[test]
fn send_clean_flags_cells_reachable_from_roots() {
    let files = [
        SourceFile::new(
            "crates/core/src/lib.rs",
            "#![forbid(unsafe_code)]\npub mod engine;\n",
        ),
        SourceFile::new(
            "crates/core/src/engine.rs",
            "pub struct TrialSpec {\n    inner: Inner,\n}\npub struct Inner {\n    cell: RefCell<u32>,\n}\n",
        ),
    ];
    let diags = lint(&files);
    assert_eq!(rules_of(&diags), vec![Rule::SendClean]);
    assert!(diags[0].message.contains("RefCell"), "{diags:?}");
    assert!(diags[0].message.contains("Inner"), "{diags:?}");
}

#[test]
fn send_clean_ignores_unreachable_types() {
    // An Rc in a type nobody reaches from the serve-critical roots is
    // not this rule's business (part (b) is reachability-scoped).
    let files = [
        SourceFile::new(
            "crates/core/src/lib.rs",
            "#![forbid(unsafe_code)]\npub mod scratch;\n",
        ),
        SourceFile::new(
            "crates/core/src/scratch.rs",
            "pub struct LocalOnly {\n    cell: Rc<u32>,\n}\n",
        ),
    ];
    assert!(lint(&files).is_empty(), "{:?}", lint(&files));
}

#[test]
fn send_clean_static_needs_a_pragma() {
    let reg = r#"
[[global]]
name  = "SCRATCH"
path  = "crates/grid/src/sim.rs"
owner = "grid::sim"
kind  = "thread-local"
reset = "cleared per campaign"
"#;
    let bare = [
        SourceFile::new("GLOBALS.toml", reg),
        SourceFile::new(
            "crates/grid/src/lib.rs",
            "#![forbid(unsafe_code)]\npub mod sim;\n",
        ),
        SourceFile::new(
            "crates/grid/src/sim.rs",
            "thread_local! {\n    static SCRATCH: RefCell<Vec<u32>> = RefCell::new(Vec::new());\n}\n",
        ),
    ];
    let diags = lint(&bare);
    assert_eq!(rules_of(&diags), vec![Rule::SendClean]);
    let justified = [
        bare[0].clone(),
        bare[1].clone(),
        SourceFile::new(
            "crates/grid/src/sim.rs",
            "thread_local! {\n    // simlint: allow(send-clean) -- thread-confined scratch, never escapes\n    static SCRATCH: RefCell<Vec<u32>> = RefCell::new(Vec::new());\n}\n",
        ),
    ];
    assert!(lint(&justified).is_empty(), "{:?}", lint(&justified));
}

// ---- float-fold-order -------------------------------------------------

#[test]
fn float_fold_fires_on_sum_and_fold() {
    let diags = lint_one(
        "crates/grid/tests/fix.rs",
        "let a: f64 = xs.iter().sum();\nlet b = ys.iter().fold(0.0_f64, |acc, x| acc + x);\n",
    );
    assert_eq!(
        rules_of(&diags),
        vec![Rule::FloatFoldOrder, Rule::FloatFoldOrder]
    );
}

#[test]
fn float_fold_ignores_integer_reductions_and_blessed_helpers() {
    // Integer reductions are order-free.
    assert!(lint_one(
        "crates/grid/tests/fix.rs",
        "let n: u64 = xs.iter().sum();\n"
    )
    .is_empty());
    // The fixed-op-order helpers are the blessed home for float folds.
    let files = [
        SourceFile::new(
            "crates/simcore/src/lib.rs",
            "#![forbid(unsafe_code)]\npub mod stats;\n",
        ),
        SourceFile::new(
            "crates/simcore/src/stats.rs",
            "pub fn mean(xs: &[f64]) -> f64 {\n    xs.iter().sum::<f64>() / xs.len() as f64\n}\n",
        ),
    ];
    assert!(lint(&files).is_empty(), "{:?}", lint(&files));
}

#[test]
fn float_fold_pragma_suppresses() {
    let diags = lint_one(
        "crates/grid/tests/fix.rs",
        "let a: f64 = xs.iter().sum(); // simlint: allow(float-fold-order) -- test statistic over a fixed sample order\n",
    );
    assert!(diags.is_empty(), "unexpected: {diags:?}");
}

// ---- mutex-poison -----------------------------------------------------

#[test]
fn mutex_poison_fires_on_bare_unwrap_only() {
    let diags = lint_one("crates/core/tests/fix.rs", "let g = m.lock().unwrap();\n");
    assert_eq!(rules_of(&diags), vec![Rule::MutexPoison]);
    // Named diagnostics are exactly what the rule wants.
    assert!(lint_one(
        "crates/core/tests/fix.rs",
        "let g = m.lock().expect(\"core::x::M poisoned\");\n"
    )
    .is_empty());
    // A lock() with no unwrap (stdout, try_lock paths) is fine.
    assert!(lint_one("crates/core/tests/fix.rs", "let g = stdout.lock();\n").is_empty());
    // Outside the sim crates the idiom is not enforced.
    assert!(lint_one("crates/bench/tests/fix.rs", "let g = m.lock().unwrap();\n").is_empty());
}

#[test]
fn mutex_poison_pragma_needs_a_reason() {
    let diags = lint_one(
        "crates/core/tests/fix.rs",
        "// simlint: allow(mutex-poison)\nlet g = m.lock().unwrap();\n",
    );
    assert_eq!(rules_of(&diags), vec![Rule::BadPragma, Rule::MutexPoison]);
    let diags = lint_one(
        "crates/core/tests/fix.rs",
        "// simlint: allow(mutex-poison) -- poison is unreachable, lock scope is panic-free\nlet g = m.lock().unwrap();\n",
    );
    assert!(diags.is_empty(), "unexpected: {diags:?}");
}
