//! The `simlint` binary: `cargo run -p simlint`.
//!
//! Walks the workspace source tree and enforces the determinism
//! contract (DESIGN.md §8). Exit codes are machine-readable so the
//! verify script and CI can gate on them:
//!
//! * `0` — tree is lint-clean
//! * `1` — violations found (one `path:line: [rule] message` per line)
//! * `2` — usage or I/O error

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use simlint::{collect_tree, lint};

const USAGE: &str = "usage: simlint [--root <path>] [--list-rules]";

/// Walk up from the manifest (or current) directory to the directory
/// whose Cargo.toml declares `[workspace]`.
fn workspace_root() -> Option<PathBuf> {
    let start = std::env::var_os("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .or_else(|| std::env::current_dir().ok())?;
    let mut dir: &Path = &start;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir.to_path_buf());
                }
            }
        }
        dir = dir.parent()?;
    }
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("simlint: --root needs a path\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--list-rules" => {
                println!("hash-collections  no HashMap/HashSet in sim crates");
                println!("wall-clock        no Instant::now/SystemTime outside criterion/timeref");
                println!("ambient-entropy   no thread_rng/OsRng/getrandom outside simcore::rng");
                println!("unstable-sort     no sort_unstable* without a key-totality pragma");
                println!(
                    "substrate-collections  no raw BTreeMap/BTreeSet in the grid host substrate"
                );
                println!("stray-file        no unreferenced or non-.rs files under src/");
                println!("forbid-unsafe     crate roots must carry #![forbid(unsafe_code)]");
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("simlint: unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let Some(root) = root.or_else(workspace_root) else {
        eprintln!("simlint: could not locate the workspace root (pass --root)");
        return ExitCode::from(2);
    };
    let files = match collect_tree(&root) {
        Ok(files) => files,
        Err(e) => {
            eprintln!("simlint: failed to walk {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    let diags = lint(&files);
    if diags.is_empty() {
        println!("simlint: OK ({} files scanned)", files.len());
        ExitCode::SUCCESS
    } else {
        for d in &diags {
            println!("{d}");
        }
        eprintln!("simlint: {} violation(s)", diags.len());
        ExitCode::from(1)
    }
}
