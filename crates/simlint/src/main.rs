//! The `simlint` binary: `cargo run -p simlint`.
//!
//! Walks the workspace source tree and enforces the determinism and
//! shared-state contracts (DESIGN.md §8, §14). Exit codes are
//! machine-readable so the verify script and CI can gate on them:
//!
//! * `0` — tree is lint-clean
//! * `1` — violations found
//! * `2` — usage or I/O error
//!
//! Output formats (`--format`):
//!
//! * `text` (default) — one `path:line: [rule] message` per line
//! * `json` — `{"violations": […], "files_scanned": N}` for tooling
//! * `github` — `::error file=…,line=…::…` workflow annotations

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use simlint::{collect_tree, lint, Diagnostic, Rule};

const USAGE: &str = "usage: simlint [--root <path>] [--format text|json|github] [--list-rules]";

/// Walk up from the manifest (or current) directory to the directory
/// whose Cargo.toml declares `[workspace]`.
fn workspace_root() -> Option<PathBuf> {
    let start = std::env::var_os("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .or_else(|| std::env::current_dir().ok())?;
    let mut dir: &Path = &start;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir.to_path_buf());
                }
            }
        }
        dir = dir.parent()?;
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Text,
    Json,
    Github,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn render(diags: &[Diagnostic], files_scanned: usize, format: Format) {
    match format {
        Format::Text => {
            for d in diags {
                println!("{d}");
            }
        }
        Format::Json => {
            let mut out = String::from("{\"violations\":[");
            for (i, d) in diags.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"path\":\"{}\",\"line\":{},\"rule\":\"{}\",\"message\":\"{}\"}}",
                    json_escape(&d.path),
                    d.line,
                    d.rule.id(),
                    json_escape(&d.message)
                ));
            }
            out.push_str(&format!("],\"files_scanned\":{files_scanned}}}"));
            println!("{out}");
        }
        Format::Github => {
            for d in diags {
                // Annotation messages must keep to one line.
                let msg = d.message.replace('\n', " ");
                println!(
                    "::error file={},line={},title=simlint {}::{}",
                    d.path,
                    d.line,
                    d.rule.id(),
                    msg
                );
            }
        }
    }
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut format = Format::Text;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("simlint: --root needs a path\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                Some("github") => format = Format::Github,
                other => {
                    eprintln!(
                        "simlint: --format needs text|json|github, got `{}`\n{USAGE}",
                        other.unwrap_or("")
                    );
                    return ExitCode::from(2);
                }
            },
            "--list-rules" => {
                for rule in Rule::all() {
                    println!("{:<22} {}", rule.id(), rule.describe());
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("simlint: unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let Some(root) = root.or_else(workspace_root) else {
        eprintln!("simlint: could not locate the workspace root (pass --root)");
        return ExitCode::from(2);
    };
    let files = match collect_tree(&root) {
        Ok(files) => files,
        Err(e) => {
            eprintln!("simlint: failed to walk {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    let diags = lint(&files);
    render(&diags, files.len(), format);
    if diags.is_empty() {
        if format == Format::Text {
            println!("simlint: OK ({} files scanned)", files.len());
        }
        ExitCode::SUCCESS
    } else {
        eprintln!("simlint: {} violation(s)", diags.len());
        ExitCode::from(1)
    }
}
