//! Lightweight item parsing over the token stream.
//!
//! This is not a Rust parser — it recovers just the item structure the
//! concurrency rules need: function bodies (as token ranges, for the
//! lock-order walk), `static` declarations including function-local
//! and `thread_local!` ones (for the global-state registry), and
//! struct/enum field types (for the send-clean reachability check).
//! Everything else is skipped token-by-token, so macro-heavy or
//! exotic code degrades to "no items found" rather than a parse error.

use crate::lexer::{Kind, Tok};

/// A function with a brace-matched body token range (inclusive of both
/// braces). Nested functions appear as their own entries.
#[derive(Debug)]
pub struct FnDecl {
    pub name: String,
    pub line: usize,
    /// `(open, close)` token indices of the body braces.
    pub body: (usize, usize),
}

/// A `static` declaration (item-level, function-local, or inside
/// `thread_local!`).
#[derive(Debug)]
pub struct StaticDecl {
    pub name: String,
    pub line: usize,
    /// Identifier tokens of the declared type, in order.
    pub ty: Vec<String>,
    /// Declared inside a `thread_local! { … }` block.
    pub thread_local: bool,
}

/// One struct field or enum variant payload.
#[derive(Debug)]
pub struct Field {
    pub line: usize,
    /// Identifier tokens of the field's type.
    pub ty: Vec<String>,
}

/// A struct or enum definition with its field/variant payload types.
#[derive(Debug)]
pub struct TypeDef {
    pub name: String,
    pub line: usize,
    pub fields: Vec<Field>,
}

/// Everything [`parse`] recovers from one file.
#[derive(Debug, Default)]
pub struct Items {
    pub fns: Vec<FnDecl>,
    pub statics: Vec<StaticDecl>,
    pub types: Vec<TypeDef>,
}

/// Index of the `}` matching the `{` at `open`, if any.
pub fn match_brace(toks: &[Tok], open: usize) -> Option<usize> {
    debug_assert!(toks[open].is_punct('{'));
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        match t.kind {
            Kind::Punct('{') => depth += 1,
            Kind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

/// Index of the `)` matching the `(` at `open`, if any.
pub fn match_paren(toks: &[Tok], open: usize) -> Option<usize> {
    debug_assert!(toks[open].is_punct('('));
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        match t.kind {
            Kind::Punct('(') => depth += 1,
            Kind::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

fn is_punct(toks: &[Tok], i: usize, c: char) -> bool {
    toks.get(i).is_some_and(|t| t.is_punct(c))
}

/// Recover items from a lexed file.
pub fn parse(toks: &[Tok]) -> Items {
    let mut items = Items::default();

    // First pass: `thread_local! { … }` brace ranges, so the statics
    // pass can tag declarations inside them.
    let mut tl_ranges: Vec<(usize, usize)> = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("thread_local")
            && is_punct(toks, i + 1, '!')
            && is_punct(toks, i + 2, '{')
        {
            if let Some(close) = match_brace(toks, i + 2) {
                tl_ranges.push((i + 2, close));
            }
        }
        i += 1;
    }
    let in_thread_local = |idx: usize| tl_ranges.iter().any(|&(a, b)| idx > a && idx < b);

    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];

        if t.is_ident("fn") {
            if let Some(name) = toks.get(i + 1).and_then(|t| t.ident()) {
                // Body = first `{` at paren/bracket depth 0 before a
                // terminating `;` (trait method signatures have none).
                let mut j = i + 2;
                let mut depth = 0i32;
                let mut open = None;
                while let Some(tok) = toks.get(j) {
                    match tok.kind {
                        Kind::Punct('(') | Kind::Punct('[') => depth += 1,
                        Kind::Punct(')') | Kind::Punct(']') => depth -= 1,
                        Kind::Punct('{') if depth == 0 => {
                            open = Some(j);
                            break;
                        }
                        Kind::Punct(';') if depth == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                if let Some(open) = open {
                    if let Some(close) = match_brace(toks, open) {
                        items.fns.push(FnDecl {
                            name: name.to_string(),
                            line: t.line,
                            body: (open, close),
                        });
                    }
                }
            }
            i += 1;
            continue;
        }

        if t.is_ident("static") {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            if let Some(name) = toks.get(j).and_then(|t| t.ident()) {
                if is_punct(toks, j + 1, ':') {
                    let mut k = j + 2;
                    let mut depth = 0i32;
                    let mut ty = Vec::new();
                    while let Some(tok) = toks.get(k) {
                        match &tok.kind {
                            Kind::Punct('<') | Kind::Punct('(') | Kind::Punct('[') => depth += 1,
                            Kind::Punct('>') | Kind::Punct(')') | Kind::Punct(']') => depth -= 1,
                            Kind::Punct('=') | Kind::Punct(';') if depth <= 0 => break,
                            Kind::Ident(s) => ty.push(s.clone()),
                            _ => {}
                        }
                        k += 1;
                    }
                    items.statics.push(StaticDecl {
                        name: name.to_string(),
                        line: t.line,
                        ty,
                        thread_local: in_thread_local(i),
                    });
                }
            }
            i += 1;
            continue;
        }

        if t.is_ident("struct") || t.is_ident("enum") {
            let is_enum = t.is_ident("enum");
            if let Some(name) = toks.get(i + 1).and_then(|t| t.ident()) {
                // Skip generics/where-clause to the body: `{` (named
                // fields / variants) or `(` (tuple struct) at angle and
                // paren depth 0; `;` means a unit struct.
                let mut j = i + 2;
                let mut angle = 0i32;
                let mut par = 0i32;
                let mut open = None;
                let mut tuple = false;
                while let Some(tok) = toks.get(j) {
                    match tok.kind {
                        Kind::Punct('<') => angle += 1,
                        Kind::Punct('>') => angle -= 1,
                        Kind::Punct('(') if angle == 0 && par == 0 => {
                            open = Some(j);
                            tuple = true;
                            break;
                        }
                        Kind::Punct('(') => par += 1,
                        Kind::Punct(')') => par -= 1,
                        Kind::Punct('{') if angle == 0 && par == 0 => {
                            open = Some(j);
                            break;
                        }
                        Kind::Punct(';') if angle == 0 && par == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                if let Some(open) = open {
                    let close = if tuple {
                        match_paren(toks, open)
                    } else {
                        match_brace(toks, open)
                    };
                    if let Some(close) = close {
                        items.types.push(TypeDef {
                            name: name.to_string(),
                            line: t.line,
                            fields: parse_fields(toks, open + 1, close, is_enum || tuple),
                        });
                    }
                }
            }
            i += 1;
            continue;
        }

        i += 1;
    }

    items
}

/// Split a struct/enum body into comma-separated chunks and pull the
/// type identifiers out of each. For named struct fields the type is
/// everything after the first top-level `:`; for enum variants and
/// tuple structs it is every identifier except the leading variant
/// name / visibility keywords.
fn parse_fields(toks: &[Tok], start: usize, end: usize, payload_style: bool) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut chunk: Vec<&Tok> = Vec::new();
    let mut depth = 0i32;
    let mut j = start;
    while j < end {
        let t = &toks[j];
        // Skip `#[…]` attributes outright.
        if t.is_punct('#') && is_punct(toks, j + 1, '[') {
            let mut d = 0i32;
            j += 1;
            while j < end {
                match toks[j].kind {
                    Kind::Punct('[') => d += 1,
                    Kind::Punct(']') => {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            j += 1;
            continue;
        }
        match t.kind {
            Kind::Punct('(') | Kind::Punct('[') | Kind::Punct('{') | Kind::Punct('<') => depth += 1,
            Kind::Punct(')') | Kind::Punct(']') | Kind::Punct('}') | Kind::Punct('>') => depth -= 1,
            Kind::Punct(',') if depth == 0 => {
                push_field(&chunk, payload_style, &mut fields);
                chunk.clear();
                j += 1;
                continue;
            }
            _ => {}
        }
        chunk.push(t);
        j += 1;
    }
    push_field(&chunk, payload_style, &mut fields);
    fields
}

fn push_field(chunk: &[&Tok], payload_style: bool, fields: &mut Vec<Field>) {
    if chunk.is_empty() {
        return;
    }
    let line = chunk[0].line;
    let ty: Vec<String> = if payload_style {
        // Enum variant / tuple struct: all identifiers except the
        // leading variant name and visibility keywords.
        let mut ids: Vec<String> = Vec::new();
        let mut skipped_head = false;
        for t in chunk {
            if let Some(s) = t.ident() {
                if matches!(s, "pub" | "crate" | "super" | "in" | "self") {
                    continue;
                }
                if !skipped_head && !chunk[0].is_punct('(') {
                    // First real identifier of an enum variant is its
                    // name; tuple-struct chunks start at the type.
                    skipped_head = true;
                    if chunk.iter().any(|t| t.is_punct('(') || t.is_punct('{')) {
                        continue;
                    }
                }
                ids.push(s.to_string());
            }
        }
        ids
    } else {
        // Named field: identifiers after the first top-level `:`.
        let mut depth = 0i32;
        let mut after_colon = false;
        let mut ids = Vec::new();
        for t in chunk {
            match t.kind {
                Kind::Punct('(') | Kind::Punct('[') | Kind::Punct('{') | Kind::Punct('<') => {
                    depth += 1
                }
                Kind::Punct(')') | Kind::Punct(']') | Kind::Punct('}') | Kind::Punct('>') => {
                    depth -= 1
                }
                Kind::Punct(':') if depth == 0 => after_colon = true,
                Kind::Ident(ref s) if after_colon => ids.push(s.clone()),
                _ => {}
            }
        }
        ids
    };
    if !ty.is_empty() {
        fields.push(Field { line, ty });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn finds_fn_bodies_and_statics() {
        let src = "fn outer() { static LOCAL: OnceLock<u32> = OnceLock::new(); }\n\
                   static TOP: Mutex<Vec<u8>> = Mutex::new(Vec::new());\n";
        let items = parse(&lex(src).toks);
        assert_eq!(items.fns.len(), 1);
        assert_eq!(items.fns[0].name, "outer");
        let names: Vec<&str> = items.statics.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["LOCAL", "TOP"]);
        assert!(items.statics[0].ty.iter().any(|t| t == "OnceLock"));
        assert!(items.statics[1].ty.iter().any(|t| t == "Mutex"));
    }

    #[test]
    fn thread_local_statics_are_tagged() {
        let src =
            "thread_local! { static ARENA: RefCell<Arena> = RefCell::new(Arena::default()); }";
        let items = parse(&lex(src).toks);
        assert_eq!(items.statics.len(), 1);
        assert!(items.statics[0].thread_local);
        assert!(items.statics[0].ty.iter().any(|t| t == "RefCell"));
    }

    #[test]
    fn struct_fields_capture_type_idents() {
        let src = "pub struct S<T> { pub a: Vec<Rc<T>>, b: u32 }";
        let items = parse(&lex(src).toks);
        assert_eq!(items.types.len(), 1);
        assert_eq!(items.types[0].fields.len(), 2);
        assert!(items.types[0].fields[0].ty.iter().any(|t| t == "Rc"));
        assert_eq!(items.types[0].fields[1].ty, ["u32"]);
    }

    #[test]
    fn enum_variant_payloads() {
        let src = "enum E { A, B(RefCell<u8>), C { x: Cell<u8> } }";
        let items = parse(&lex(src).toks);
        let ty: Vec<String> = items.types[0]
            .fields
            .iter()
            .flat_map(|f| f.ty.clone())
            .collect();
        assert!(ty.iter().any(|t| t == "RefCell"));
        assert!(ty.iter().any(|t| t == "Cell"));
    }

    #[test]
    fn fn_with_generic_bounds_and_where() {
        let src = "fn g<F: Fn(u32) -> u32>(f: F) -> u32 where F: Clone { f(1) }";
        let items = parse(&lex(src).toks);
        assert_eq!(items.fns.len(), 1);
        let (open, close) = items.fns[0].body;
        assert!(open < close);
    }
}
