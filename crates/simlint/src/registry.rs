//! Parser for the `GLOBALS.toml` shared-state registry.
//!
//! The registry is the checked-in source of truth for every
//! interior-mutable `static` in the sim crates (DESIGN.md §14). The
//! format is a tiny TOML subset — an array of `[[global]]` tables with
//! string and integer values — parsed by hand so the analyzer stays
//! zero-dep:
//!
//! ```toml
//! [[global]]
//! name  = "SEGMENT_MEMO"
//! path  = "crates/grid/src/fastforward.rs"
//! owner = "grid::fastforward"
//! kind  = "mutex"          # mutex | rwlock | once | atomic | cell | thread-local
//! rank  = 40               # required for mutex/rwlock: lock-order rank
//! reset = "grid::fastforward::reset_all"
//! ```
//!
//! `rank` defines the global lock acquisition order: a lock may only
//! be taken while holding locks of strictly lower rank. `reset` names
//! the test hook that clears the state (or documents why none is
//! needed) so cross-test cache bleed stays impossible.

/// The accepted `kind` values.
pub const KINDS: &[&str] = &["mutex", "rwlock", "once", "atomic", "cell", "thread-local"];

/// One `[[global]]` entry.
#[derive(Debug, Clone, Default)]
pub struct GlobalEntry {
    pub name: String,
    pub path: String,
    pub owner: String,
    pub kind: String,
    pub rank: Option<u32>,
    pub reset: String,
    /// Line of the `[[global]]` header, for diagnostics.
    pub line: usize,
}

/// Parse the registry text. Returns the entries that could be
/// recovered plus `(line, message)` errors for everything malformed;
/// entries missing required fields are reported but still returned
/// when they carry enough identity (name + path) for cross-checking.
pub fn parse(text: &str) -> (Vec<GlobalEntry>, Vec<(usize, String)>) {
    let mut entries: Vec<GlobalEntry> = Vec::new();
    let mut errors: Vec<(usize, String)> = Vec::new();
    let mut cur: Option<GlobalEntry> = None;

    let finish = |e: Option<GlobalEntry>,
                  entries: &mut Vec<GlobalEntry>,
                  errors: &mut Vec<(usize, String)>| {
        let Some(e) = e else { return };
        for (field, value) in [
            ("name", &e.name),
            ("path", &e.path),
            ("owner", &e.owner),
            ("kind", &e.kind),
            ("reset", &e.reset),
        ] {
            if value.is_empty() {
                errors.push((e.line, format!("[[global]] entry is missing `{field}`")));
            }
        }
        if !e.kind.is_empty() && !KINDS.contains(&e.kind.as_str()) {
            errors.push((
                e.line,
                format!(
                    "unknown kind `{}`; expected one of {}",
                    e.kind,
                    KINDS.join("|")
                ),
            ));
        }
        if matches!(e.kind.as_str(), "mutex" | "rwlock") && e.rank.is_none() {
            errors.push((
                e.line,
                format!(
                    "lockable global `{}` needs a `rank` for lock-order checking",
                    e.name
                ),
            ));
        }
        if !e.name.is_empty() && !e.path.is_empty() {
            entries.push(e);
        }
    };

    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = match raw.find('#') {
            Some(cut) if !raw[..cut].contains('"') => raw[..cut].trim(),
            _ => raw.trim(),
        };
        if line.is_empty() {
            continue;
        }
        if line == "[[global]]" {
            finish(cur.take(), &mut entries, &mut errors);
            cur = Some(GlobalEntry {
                line: lineno,
                ..GlobalEntry::default()
            });
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            errors.push((lineno, "expected `key = value` or `[[global]]`".to_string()));
            continue;
        };
        let (key, value) = (key.trim(), value.trim());
        let Some(e) = cur.as_mut() else {
            errors.push((lineno, format!("`{key}` outside a [[global]] table")));
            continue;
        };
        match key {
            "name" | "path" | "owner" | "kind" | "reset" => {
                let Some(s) = unquote(value) else {
                    errors.push((lineno, format!("`{key}` must be a double-quoted string")));
                    continue;
                };
                match key {
                    "name" => e.name = s,
                    "path" => e.path = s,
                    "owner" => e.owner = s,
                    "kind" => e.kind = s,
                    _ => e.reset = s,
                }
            }
            "rank" => match value.parse::<u32>() {
                Ok(r) => e.rank = Some(r),
                Err(_) => errors.push((lineno, "`rank` must be an unsigned integer".to_string())),
            },
            other => errors.push((lineno, format!("unknown key `{other}` in [[global]]"))),
        }
    }
    finish(cur.take(), &mut entries, &mut errors);

    (entries, errors)
}

fn unquote(value: &str) -> Option<String> {
    let v = value.strip_prefix('"')?.strip_suffix('"')?;
    if v.contains('"') {
        return None;
    }
    Some(v.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"
# registry
[[global]]
name  = "SEGMENT_MEMO"
path  = "crates/grid/src/fastforward.rs"
owner = "grid::fastforward"
kind  = "mutex"
rank  = 40
reset = "grid::fastforward::reset_all"

[[global]]
name  = "COUNTER"
path  = "crates/grid/src/fastforward.rs"
owner = "grid::fastforward"
kind  = "atomic"
reset = "grid::fastforward::reset_all"
"#;

    #[test]
    fn parses_entries() {
        let (entries, errors) = parse(GOOD);
        assert!(errors.is_empty(), "{errors:?}");
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].name, "SEGMENT_MEMO");
        assert_eq!(entries[0].rank, Some(40));
        assert_eq!(entries[1].kind, "atomic");
        assert_eq!(entries[1].rank, None);
    }

    #[test]
    fn missing_rank_on_mutex_is_an_error() {
        let (_, errors) = parse(
            "[[global]]\nname = \"M\"\npath = \"crates/grid/src/x.rs\"\nowner = \"m\"\nkind = \"mutex\"\nreset = \"none\"\n",
        );
        assert!(errors.iter().any(|(_, m)| m.contains("rank")), "{errors:?}");
    }

    #[test]
    fn malformed_lines_are_reported() {
        let (_, errors) = parse("[[global]]\nname = unquoted\nbogus\nwhat = \"x\"\n");
        assert_eq!(errors.iter().filter(|(l, _)| *l == 2).count(), 1);
        assert!(errors.iter().any(|(l, _)| *l == 3));
        assert!(errors.iter().any(|(_, m)| m.contains("unknown key `what`")));
    }
}
