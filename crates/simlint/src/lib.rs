//! # simlint
//!
//! A rustc-`tidy`-style static-analysis pass that machine-checks the
//! `vgrid` determinism contract (DESIGN.md §8). Every simulation run
//! must be a pure function of (config, seed); this crate walks the
//! workspace source tree and rejects the constructs that silently break
//! that property:
//!
//! | rule id            | what it bans                                                  |
//! |--------------------|---------------------------------------------------------------|
//! | `hash-collections` | `HashMap`/`HashSet` in sim crates (iteration-order entropy)   |
//! | `wall-clock`       | `Instant::now`/`SystemTime` outside the criterion/timeref shims |
//! | `ambient-entropy`  | `thread_rng`/`OsRng`/`getrandom`/`from_entropy` outside `simcore::rng` |
//! | `unstable-sort`    | `sort_unstable*` without an explicit key-totality pragma      |
//! | `substrate-collections` | raw `BTreeMap`/`BTreeSet` in the grid host substrate (use `DetMap`/`DetSet`) |
//! | `stray-file`       | unreferenced / non-`.rs` files under any `src/` directory     |
//! | `forbid-unsafe`    | crate roots missing `#![forbid(unsafe_code)]`                 |
//!
//! A violation line can be sanctioned with a pragma comment, either
//! trailing the line or on the line directly above it:
//!
//! ```text
//! // simlint: allow(hash-collections) -- debug dump, order never observed
//! ```
//!
//! The reason is mandatory: an allow without a justification is itself
//! a diagnostic. Pragmas are only recognised inside comments — the
//! scanner separates code, comments and string literals, so neither
//! banned tokens in doc prose nor pragma look-alikes in string
//! literals (e.g. this crate's own rule tables and test fixtures) ever
//! fire or suppress anything.
//!
//! The library is pure — [`lint`] maps a set of in-memory
//! [`SourceFile`]s to [`Diagnostic`]s — so the fixture tests run
//! without touching the filesystem; the `simlint` binary glues
//! [`collect_tree`] + [`lint`] to the real workspace and turns the
//! outcome into a machine-readable exit code (0 clean, 1 violations,
//! 2 I/O or usage error).

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::Path;

/// The crates whose source must be free of iteration-order and
/// comparison nondeterminism (rules `hash-collections`,
/// `unstable-sort`). Everything under `crates/<name>/`.
pub const SIM_CRATES: &[&str] = &[
    "simcore",
    "simobs",
    "os",
    "machine",
    "vmm",
    "workloads",
    "grid",
    "core",
];

/// Crates allowed to read host wall-clock time: the in-repo criterion
/// shim (benchmarks the simulator itself) and the external
/// time-reference model.
pub const WALL_CLOCK_SHIMS: &[&str] = &["criterion", "timeref"];

/// The one file allowed to define entropy plumbing: the seedable
/// simulation RNG.
pub const ENTROPY_SHIM: &str = "crates/simcore/src/rng.rs";

/// The grid host-substrate files, where per-host state must live in
/// the deterministic wrappers (`DetMap`/`DetSet`) rather than raw
/// B-tree collections, so the batched/hydrated equivalence contract
/// stays visible in the types (DESIGN.md §12).
pub const SUBSTRATE_FILES: &[&str] = &[
    "crates/grid/src/sim.rs",
    "crates/grid/src/archetype.rs",
    "crates/grid/src/hydrate.rs",
    "crates/grid/src/fastforward.rs",
];

/// A determinism rule enforced by this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// `HashMap`/`HashSet` in a sim crate.
    HashCollections,
    /// `Instant::now`/`SystemTime` outside the wall-clock shims.
    WallClock,
    /// Ambient entropy (`thread_rng` & co.) outside `simcore::rng`.
    AmbientEntropy,
    /// `sort_unstable*` without a key-totality pragma.
    UnstableSort,
    /// Raw `BTreeMap`/`BTreeSet` in the grid host substrate.
    SubstrateCollections,
    /// Unreferenced or non-`.rs` file under a `src/` directory.
    StrayFile,
    /// Crate root missing `#![forbid(unsafe_code)]`.
    ForbidUnsafe,
    /// Malformed or unknown allow-pragma.
    BadPragma,
}

impl Rule {
    /// The id used in pragmas and diagnostics.
    pub fn id(self) -> &'static str {
        match self {
            Rule::HashCollections => "hash-collections",
            Rule::WallClock => "wall-clock",
            Rule::AmbientEntropy => "ambient-entropy",
            Rule::UnstableSort => "unstable-sort",
            Rule::SubstrateCollections => "substrate-collections",
            Rule::StrayFile => "stray-file",
            Rule::ForbidUnsafe => "forbid-unsafe",
            Rule::BadPragma => "bad-pragma",
        }
    }

    /// Parse a pragma rule id. Only line-scoped rules can be allowed,
    /// so the file-scoped ones (`stray-file`, `forbid-unsafe`) and
    /// `bad-pragma` itself are not recognised here.
    pub fn from_pragma_id(id: &str) -> Option<Rule> {
        match id {
            "hash-collections" => Some(Rule::HashCollections),
            "wall-clock" => Some(Rule::WallClock),
            "ambient-entropy" => Some(Rule::AmbientEntropy),
            "unstable-sort" => Some(Rule::UnstableSort),
            "substrate-collections" => Some(Rule::SubstrateCollections),
            _ => None,
        }
    }
}

/// One finding, pointing at a workspace-relative `path:line`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line number (1 for whole-file findings).
    pub line: usize,
    /// Which rule fired.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path,
            self.line,
            self.rule.id(),
            self.message
        )
    }
}

/// A file handed to [`lint`].
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// UTF-8 contents for `.rs` files; `None` for non-source files
    /// (which only the `stray-file` rule looks at).
    pub text: Option<String>,
}

impl SourceFile {
    /// Convenience constructor for tests and callers.
    pub fn new(path: &str, text: &str) -> SourceFile {
        SourceFile {
            path: path.to_string(),
            text: Some(text.to_string()),
        }
    }
}

/// The two views of a source file the rules operate on: `code` has
/// comments and string/char literals blanked out, `comments` has
/// everything *except* comment bodies blanked out. Both preserve byte
/// offsets and newlines, so line numbers line up with the original.
#[derive(Debug)]
pub struct Views {
    /// Code with comments and literals replaced by spaces.
    pub code: String,
    /// Comment bodies with code and literals replaced by spaces.
    pub comments: String,
}

fn utf8_len(first: u8) -> usize {
    match first {
        b if b < 0x80 => 1,
        b if b >= 0xF0 => 4,
        b if b >= 0xE0 => 3,
        _ => 2,
    }
}

/// Split `text` into its code and comment views. Handles line and
/// (nested) block comments, string/char/byte literals, raw strings
/// with any hash depth, raw identifiers and lifetimes.
pub fn scrub(text: &str) -> Views {
    let b = text.as_bytes();
    let n = b.len();
    let mut code = vec![b' '; n];
    let mut comments = vec![b' '; n];
    for (i, &byte) in b.iter().enumerate() {
        if byte == b'\n' {
            code[i] = b'\n';
            comments[i] = b'\n';
        }
    }

    let mut i = 0;
    let mut prev_ident = false; // was the previous code byte identifier-ish?
    while i < n {
        let c = b[i];
        // Line comment.
        if c == b'/' && i + 1 < n && b[i + 1] == b'/' {
            i += 2;
            while i < n && b[i] != b'\n' {
                comments[i] = b[i];
                i += 1;
            }
            prev_ident = false;
            continue;
        }
        // Block comment (nested).
        if c == b'/' && i + 1 < n && b[i + 1] == b'*' {
            let mut depth = 1usize;
            i += 2;
            while i < n && depth > 0 {
                if b[i] == b'/' && i + 1 < n && b[i + 1] == b'*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == b'*' && i + 1 < n && b[i + 1] == b'/' {
                    depth -= 1;
                    i += 2;
                } else {
                    if b[i] != b'\n' {
                        comments[i] = b[i];
                    }
                    i += 1;
                }
            }
            prev_ident = false;
            continue;
        }
        // Raw (byte) strings: r"…", r#"…"#, br#"…"#, and raw
        // identifiers (r#ident), but only where `r`/`b` start a token.
        let saw_r = c == b'r' || (c == b'b' && i + 1 < n && b[i + 1] == b'r');
        if saw_r && !prev_ident {
            let mut j = i + 1 + usize::from(c == b'b');
            let mut hashes = 0usize;
            while j < n && b[j] == b'#' {
                hashes += 1;
                j += 1;
            }
            if j < n && b[j] == b'"' {
                // Raw string: scan for `"` followed by `hashes` hashes.
                i = j + 1;
                'raw: while i < n {
                    if b[i] == b'"' {
                        let mut k = 0;
                        while k < hashes && i + 1 + k < n && b[i + 1 + k] == b'#' {
                            k += 1;
                        }
                        if k == hashes {
                            i += 1 + hashes;
                            break 'raw;
                        }
                    }
                    i += 1;
                }
                prev_ident = false;
                continue;
            }
            // `r#ident` (raw identifier) or a plain identifier starting
            // with `r`/`b`: fall through to the default code path.
        }
        // Byte string / byte char: skip the `b` prefix and handle like
        // the plain literal below.
        let mut i2 = i;
        if c == b'b' && !prev_ident && i + 1 < n && (b[i + 1] == b'"' || b[i + 1] == b'\'') {
            i2 = i + 1;
        }
        let c = b[i2];
        // String literal (escapes honoured).
        if c == b'"' {
            i = i2 + 1;
            while i < n {
                if b[i] == b'\\' {
                    i += 2;
                } else if b[i] == b'"' {
                    i += 1;
                    break;
                } else {
                    i += 1;
                }
            }
            prev_ident = false;
            continue;
        }
        // Char literal vs. lifetime.
        if c == b'\'' {
            i = i2;
            if i + 1 < n && b[i + 1] == b'\\' {
                // Escaped char: quote, backslash, the escaped char,
                // then anything up to the closing quote (covers
                // `'\u{…}'` and `'\''`).
                i += 3;
                while i < n && b[i] != b'\'' && b[i] != b'\n' {
                    i += 1;
                }
                i += 1;
                prev_ident = false;
                continue;
            }
            if i + 1 < n {
                let ch_len = utf8_len(b[i + 1]);
                let close = i + 1 + ch_len;
                if close < n && b[close] == b'\'' {
                    i = close + 1; // char literal like 'x'
                    prev_ident = false;
                    continue;
                }
            }
            // Lifetime: the quote itself is code.
            code[i] = b'\'';
            i += 1;
            prev_ident = false;
            continue;
        }
        code[i] = c;
        prev_ident = c == b'_' || c.is_ascii_alphanumeric();
        i += 1;
    }

    Views {
        code: String::from_utf8(code).expect("blanked bytes are ASCII"),
        comments: String::from_utf8(comments).expect("blanked bytes are ASCII"),
    }
}

fn is_ident_byte(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphanumeric()
}

/// Find `token` in `line` respecting identifier boundaries. With
/// `prefix`, the token may continue as an identifier (used so
/// `sort_unstable` also matches `sort_unstable_by_key`).
fn has_token(line: &str, token: &str, prefix: bool) -> bool {
    let lb = line.as_bytes();
    let mut start = 0;
    while let Some(pos) = line[start..].find(token) {
        let at = start + pos;
        let before_ok = at == 0 || !is_ident_byte(lb[at - 1]);
        let end = at + token.len();
        let after_ok = prefix || end >= lb.len() || !is_ident_byte(lb[end]);
        if before_ok && after_ok {
            return true;
        }
        start = at + 1;
    }
    false
}

/// Per-file pragma table: line number -> rules allowed on that line
/// and the next.
type Allows = BTreeMap<usize, Vec<Rule>>;

/// Parse allow-pragmas out of the comments view. Malformed pragmas
/// become `bad-pragma` diagnostics.
fn parse_pragmas(path: &str, comments: &str, diags: &mut Vec<Diagnostic>) -> Allows {
    let mut allows: Allows = BTreeMap::new();
    let marker = "simlint:";
    for (lineno, line) in comments.lines().enumerate() {
        let lineno = lineno + 1;
        let mut cursor = 0;
        while let Some(pos) = line[cursor..].find(marker) {
            let after = &line[cursor + pos + marker.len()..];
            cursor += pos + marker.len();
            let after = after.trim_start();
            let Some(rest) = after.strip_prefix("allow(") else {
                diags.push(Diagnostic {
                    path: path.to_string(),
                    line: lineno,
                    rule: Rule::BadPragma,
                    message: "expected `allow(<rule>) -- <reason>` after `simlint:`".into(),
                });
                continue;
            };
            let Some(close) = rest.find(')') else {
                diags.push(Diagnostic {
                    path: path.to_string(),
                    line: lineno,
                    rule: Rule::BadPragma,
                    message: "unclosed `allow(` pragma".into(),
                });
                continue;
            };
            let id = rest[..close].trim();
            let tail = rest[close + 1..].trim_start();
            let Some(rule) = Rule::from_pragma_id(id) else {
                diags.push(Diagnostic {
                    path: path.to_string(),
                    line: lineno,
                    rule: Rule::BadPragma,
                    message: format!("unknown or non-allowable rule `{id}` in pragma"),
                });
                continue;
            };
            let reason_ok = tail
                .strip_prefix("--")
                .map(|r| !r.trim().is_empty())
                .unwrap_or(false);
            if !reason_ok {
                diags.push(Diagnostic {
                    path: path.to_string(),
                    line: lineno,
                    rule: Rule::BadPragma,
                    message: format!("pragma `allow({id})` needs a justification: `-- <reason>`"),
                });
                continue;
            }
            allows.entry(lineno).or_default().push(rule);
        }
    }
    allows
}

fn allowed(allows: &Allows, rule: Rule, line: usize) -> bool {
    let on = |l: usize| allows.get(&l).map(|v| v.contains(&rule)).unwrap_or(false);
    on(line) || (line > 0 && on(line - 1))
}

/// Does `path` live in one of the sim crates?
fn in_sim_crate(path: &str) -> bool {
    SIM_CRATES
        .iter()
        .any(|c| path.starts_with(&format!("crates/{c}/")))
}

fn in_wall_clock_shim(path: &str) -> bool {
    WALL_CLOCK_SHIMS
        .iter()
        .any(|c| path.starts_with(&format!("crates/{c}/")))
}

/// The top-level unit a path belongs to: `crates/<name>` or `""` for
/// the root package. Module references only count within their unit.
fn unit_of(path: &str) -> String {
    if let Some(rest) = path.strip_prefix("crates/") {
        match rest.find('/') {
            Some(cut) => format!("crates/{}", &rest[..cut]),
            None => String::new(),
        }
    } else {
        String::new()
    }
}

/// Is `path` a compilation root cargo discovers on its own (crate
/// roots, bin/test/bench/example targets)?
fn is_compilation_root(path: &str, unit: &str) -> bool {
    let local = if unit.is_empty() {
        path
    } else {
        match path.strip_prefix(&format!("{unit}/")) {
            Some(l) => l,
            None => return false,
        }
    };
    local == "src/lib.rs"
        || local == "src/main.rs"
        || local == "build.rs"
        || (local.starts_with("src/bin/") && local.ends_with(".rs"))
        || (local.starts_with("tests/") && local.ends_with(".rs"))
        || (local.starts_with("benches/") && local.ends_with(".rs"))
        || (local.starts_with("examples/") && local.ends_with(".rs"))
}

/// Collect `mod name;` declarations from a code view.
fn collect_mod_decls(code: &str, out: &mut Vec<String>) {
    for line in code.lines() {
        let lb = line.as_bytes();
        let mut start = 0;
        while let Some(pos) = line[start..].find("mod") {
            let at = start + pos;
            start = at + 3;
            let before_ok = at == 0 || !is_ident_byte(lb[at - 1]);
            let after = &line[at + 3..];
            if !before_ok || !after.starts_with(|c: char| c.is_whitespace()) {
                continue;
            }
            let after = after.trim_start();
            let ident: String = after
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if ident.is_empty() {
                continue;
            }
            if after[ident.len()..].trim_start().starts_with(';') {
                out.push(ident);
            }
        }
    }
}

struct TokenRule {
    rule: Rule,
    tokens: &'static [(&'static str, bool)], // (token, prefix-match)
    message: &'static str,
}

const TOKEN_RULES: &[TokenRule] = &[
    TokenRule {
        rule: Rule::HashCollections,
        tokens: &[("HashMap", false), ("HashSet", false)],
        message: "hash collections iterate in RandomState order; use \
                  `vgrid_simcore::DetMap`/`DetSet` in sim crates",
    },
    TokenRule {
        rule: Rule::WallClock,
        tokens: &[("Instant::now", false), ("SystemTime", false)],
        message: "host wall-clock reads are banned outside the criterion/timeref shims; \
                  simulated time comes from `vgrid_simcore::SimTime`",
    },
    TokenRule {
        rule: Rule::AmbientEntropy,
        tokens: &[
            ("thread_rng", false),
            ("from_entropy", false),
            ("OsRng", false),
            ("getrandom", false),
        ],
        message: "ambient entropy is banned outside `simcore::rng`; \
                  fork a seeded `SimRng` stream instead",
    },
    TokenRule {
        rule: Rule::UnstableSort,
        tokens: &[("sort_unstable", true)],
        message: "`sort_unstable*` reorders equal keys; prove the key is total and \
                  annotate, or use a stable sort",
    },
    TokenRule {
        rule: Rule::SubstrateCollections,
        tokens: &[("BTreeMap", false), ("BTreeSet", false)],
        message: "host-substrate state must use `vgrid_simcore::DetMap`/`DetSet` so the \
                  batched/hydrated equivalence contract stays visible in the types",
    },
];

fn rule_applies(rule: Rule, path: &str) -> bool {
    match rule {
        Rule::HashCollections => in_sim_crate(path),
        Rule::WallClock => !in_wall_clock_shim(path),
        Rule::AmbientEntropy => path != ENTROPY_SHIM,
        Rule::UnstableSort => true,
        Rule::SubstrateCollections => SUBSTRATE_FILES.contains(&path),
        _ => false,
    }
}

/// Run every rule over the given files. Paths are workspace-relative
/// with `/` separators; diagnostics come back sorted by (path, line).
pub fn lint(files: &[SourceFile]) -> Vec<Diagnostic> {
    let mut diags: Vec<Diagnostic> = Vec::new();

    // Scrub once per file; collect per-unit module declarations for
    // the stray-file rule along the way.
    let mut mod_decls: BTreeMap<String, Vec<String>> = BTreeMap::new();
    let mut prepared: Vec<(usize, Views)> = Vec::new();
    for (idx, f) in files.iter().enumerate() {
        let Some(text) = &f.text else { continue };
        let views = scrub(text);
        collect_mod_decls(&views.code, mod_decls.entry(unit_of(&f.path)).or_default());
        prepared.push((idx, views));
    }

    for (idx, views) in &prepared {
        let f = &files[*idx];
        let allows = parse_pragmas(&f.path, &views.comments, &mut diags);

        // Token rules on the code view.
        for tr in TOKEN_RULES {
            if !rule_applies(tr.rule, &f.path) {
                continue;
            }
            for (lineno, line) in views.code.lines().enumerate() {
                let lineno = lineno + 1;
                let hit = tr.tokens.iter().any(|(t, pfx)| has_token(line, t, *pfx));
                if hit && !allowed(&allows, tr.rule, lineno) {
                    diags.push(Diagnostic {
                        path: f.path.clone(),
                        line: lineno,
                        rule: tr.rule,
                        message: tr.message.to_string(),
                    });
                }
            }
        }

        // forbid-unsafe: crate roots must carry the attribute.
        let is_crate_root = f.path == "src/lib.rs"
            || (f.path.starts_with("crates/") && f.path.ends_with("/src/lib.rs"));
        if is_crate_root && !views.code.contains("#![forbid(unsafe_code)]") {
            diags.push(Diagnostic {
                path: f.path.clone(),
                line: 1,
                rule: Rule::ForbidUnsafe,
                message: "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
            });
        }
    }

    // stray-file: everything under a src/ directory must be a .rs file
    // that cargo or a `mod` declaration actually references.
    for f in files {
        let under_src = f.path.starts_with("src/") || f.path.contains("/src/");
        if !under_src {
            continue;
        }
        if !f.path.ends_with(".rs") {
            diags.push(Diagnostic {
                path: f.path.clone(),
                line: 1,
                rule: Rule::StrayFile,
                message: "non-`.rs` file under src/; delete it or move it out of the \
                          source tree"
                    .to_string(),
            });
            continue;
        }
        let unit = unit_of(&f.path);
        if is_compilation_root(&f.path, &unit) {
            continue;
        }
        let file_name = f.path.rsplit('/').next().unwrap_or(&f.path);
        let mod_name = if file_name == "mod.rs" {
            let parent = f.path.rsplit('/').nth(1).unwrap_or("");
            parent.to_string()
        } else {
            file_name.trim_end_matches(".rs").to_string()
        };
        let declared = mod_decls
            .get(&unit)
            .map(|v| v.contains(&mod_name))
            .unwrap_or(false);
        if !declared {
            diags.push(Diagnostic {
                path: f.path.clone(),
                line: 1,
                rule: Rule::StrayFile,
                message: format!(
                    "unreferenced source file: no `mod {mod_name};` in {}",
                    if unit.is_empty() {
                        "the root package"
                    } else {
                        &unit
                    }
                ),
            });
        }
    }

    diags.sort();
    diags
}

const SKIP_DIRS: &[&str] = &["target", ".git", ".claude", "node_modules"];

/// Walk the workspace at `root` and collect every `.rs` file plus
/// every other file that sits under a `src/` directory (for the
/// `stray-file` rule). Paths come back workspace-relative with `/`
/// separators, sorted.
pub fn collect_tree(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
                continue;
            }
            let rel = path
                .strip_prefix(root)
                .expect("walk stays under root")
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            let is_rs = rel.ends_with(".rs");
            let under_src = rel.starts_with("src/") || rel.contains("/src/");
            if !is_rs && !under_src {
                continue;
            }
            let text = if is_rs {
                fs::read_to_string(&path).ok()
            } else {
                None
            };
            out.push(SourceFile { path: rel, text });
        }
    }
    out.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scrub_separates_code_comments_and_strings() {
        let src = "let x = 1; // note: HashMap here\nlet s = \"HashMap\";\n";
        let v = scrub(src);
        assert!(v.code.contains("let x = 1;"));
        assert!(!v.code.contains("HashMap"), "code view: {}", v.code);
        assert!(v.comments.contains("note: HashMap here"));
        assert!(!v.comments.contains("let x"));
        // Line structure is preserved in both views.
        assert_eq!(v.code.lines().count(), 2);
        assert_eq!(v.comments.lines().count(), 2);
    }

    #[test]
    fn scrub_handles_raw_strings_and_lifetimes() {
        let src = "fn f<'a>(x: &'a str) { let r = r#\"SystemTime\"#; let c = 'x'; }\n";
        let v = scrub(src);
        assert!(!v.code.contains("SystemTime"));
        assert!(v.code.contains("fn f<'a>(x: &'a str)"));
    }

    #[test]
    fn scrub_handles_nested_block_comments() {
        let src = "a /* one /* two */ still */ b\n";
        let v = scrub(src);
        assert!(v.code.contains('a') && v.code.contains('b'));
        assert!(!v.code.contains("still"));
        assert!(v.comments.contains("still"));
    }

    #[test]
    fn token_boundaries() {
        assert!(has_token(
            "use std::collections::HashMap;",
            "HashMap",
            false
        ));
        assert!(!has_token("struct MyHashMapLike;", "HashMap", false));
        assert!(has_token(
            "v.sort_unstable_by_key(|x| x.0);",
            "sort_unstable",
            true
        ));
        assert!(!has_token(
            "v.sort_unstable_by_key(|x| x.0);",
            "sort_unstable",
            false
        ));
    }
}
