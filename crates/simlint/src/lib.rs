//! # simlint
//!
//! A rustc-`tidy`-style static-analysis pass that machine-checks the
//! `vgrid` determinism and shared-state contracts (DESIGN.md §8, §14).
//! Every simulation run must be a pure function of (config, seed), and
//! every piece of process-global mutable state must be declared,
//! ranked, and resettable before `vgrid serve` lets concurrent tenants
//! share the caches. The pass walks the workspace source tree as a
//! comment/string-aware token stream with lightweight item parsing
//! (functions, statics, struct/enum fields) and rejects the constructs
//! that silently break those properties:
//!
//! | rule id                 | what it checks                                                |
//! |-------------------------|---------------------------------------------------------------|
//! | `hash-collections`      | no `HashMap`/`HashSet` in sim crates (iteration-order entropy) |
//! | `wall-clock`            | no `Instant::now`/`SystemTime` outside the criterion/timeref shims |
//! | `ambient-entropy`       | no `thread_rng`/`OsRng`/`getrandom`/`from_entropy` outside `simcore::rng` |
//! | `unstable-sort`         | no `sort_unstable*` without an explicit key-totality pragma   |
//! | `substrate-collections` | no raw `BTreeMap`/`BTreeSet` in the grid host substrate       |
//! | `stray-file`            | no unreferenced / non-`.rs` files under any `src/` directory  |
//! | `forbid-unsafe`         | crate roots carry `#![forbid(unsafe_code)]`                   |
//! | `global-state-registry` | every interior-mutable `static` in sim crates is declared in `GLOBALS.toml`, and vice versa |
//! | `lock-order`            | locks on registered globals are acquired in strictly increasing rank order, with no cycles |
//! | `send-clean`            | no `Rc`/`RefCell`/`Cell` in types reachable from the engine/cache state `vgrid serve` ships across threads |
//! | `float-fold-order`      | no ad-hoc float `sum()`/`fold()` reductions outside the blessed fixed-op-order helpers |
//! | `mutex-poison`          | `.lock().expect("…")` with a named diagnostic, never bare `.unwrap()` |
//!
//! A violation line can be sanctioned with a pragma comment, either
//! trailing the line or on the line directly above it:
//!
//! ```text
//! // simlint: allow(hash-collections) -- debug dump, order never observed
//! ```
//!
//! The reason is mandatory: an allow without a justification is itself
//! a diagnostic (`bad-pragma`). Pragmas are only recognised inside
//! comments — the lexer separates code, comments and string literals,
//! so neither banned tokens in doc prose nor pragma look-alikes in
//! string literals (e.g. this crate's own rule tables and test
//! fixtures) ever fire or suppress anything.
//!
//! The library is pure — [`lint`] maps a set of in-memory
//! [`SourceFile`]s (including the `GLOBALS.toml` registry, when
//! present) to [`Diagnostic`]s — so the fixture tests run without
//! touching the filesystem; the `simlint` binary glues
//! [`collect_tree`] + [`lint`] to the real workspace and turns the
//! outcome into a machine-readable exit code (0 clean, 1 violations,
//! 2 I/O or usage error).

#![forbid(unsafe_code)]

pub mod lexer;
pub mod parse;
pub mod registry;

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::Path;

use lexer::{Kind, Lexed, Tok};
use parse::{match_paren, Items, StaticDecl};

/// The crates whose source must be free of iteration-order,
/// comparison, and shared-state nondeterminism. Everything under
/// `crates/<name>/`.
pub const SIM_CRATES: &[&str] = &[
    "simcore",
    "simobs",
    "os",
    "machine",
    "vmm",
    "workloads",
    "grid",
    "core",
    "serve",
];

/// Crates allowed to read host wall-clock time: the in-repo criterion
/// shim (benchmarks the simulator itself) and the external
/// time-reference model.
pub const WALL_CLOCK_SHIMS: &[&str] = &["criterion", "timeref"];

/// The one file allowed to define entropy plumbing: the seedable
/// simulation RNG.
pub const ENTROPY_SHIM: &str = "crates/simcore/src/rng.rs";

/// The grid host-substrate files, where per-host state must live in
/// the deterministic wrappers (`DetMap`/`DetSet`) rather than raw
/// B-tree collections, so the batched/hydrated equivalence contract
/// stays visible in the types (DESIGN.md §12).
pub const SUBSTRATE_FILES: &[&str] = &[
    "crates/grid/src/sim.rs",
    "crates/grid/src/archetype.rs",
    "crates/grid/src/hydrate.rs",
    "crates/grid/src/fastforward.rs",
];

/// Workspace-relative path of the shared-state registry.
pub const REGISTRY_PATH: &str = "GLOBALS.toml";

/// Roots of the send-clean reachability check: the types `vgrid serve`
/// must ship across threads — trial inputs/outputs, the campaign
/// substrate state, and every value type stored in a process-global
/// cache. Any struct/enum reachable from these through field types
/// must be free of `Rc`/`RefCell`/`Cell`.
pub const SEND_CLEAN_ROOTS: &[&str] = &[
    "TrialSpec",
    "TrialResult",
    "SimState",
    "CampaignCheckpoint",
    "SegmentSolution",
    "TrajectoryCache",
];

/// Files whose float reductions are blessed: the Welford /
/// fixed-op-order statistics helpers every other crate must use.
pub const FLOAT_FOLD_BLESSED: &[&str] = &["crates/simcore/src/stats.rs"];

/// A rule enforced by this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// `HashMap`/`HashSet` in a sim crate.
    HashCollections,
    /// `Instant::now`/`SystemTime` outside the wall-clock shims.
    WallClock,
    /// Ambient entropy (`thread_rng` & co.) outside `simcore::rng`.
    AmbientEntropy,
    /// `sort_unstable*` without a key-totality pragma.
    UnstableSort,
    /// Raw `BTreeMap`/`BTreeSet` in the grid host substrate.
    SubstrateCollections,
    /// Unreferenced or non-`.rs` file under a `src/` directory.
    StrayFile,
    /// Crate root missing `#![forbid(unsafe_code)]`.
    ForbidUnsafe,
    /// Interior-mutable static not declared in `GLOBALS.toml` (or a
    /// registry entry with no matching static).
    GlobalStateRegistry,
    /// Lock acquired out of rank order, re-acquired while held, or
    /// part of an acquisition cycle.
    LockOrder,
    /// `Rc`/`RefCell`/`Cell` reachable from the serve-critical types.
    SendClean,
    /// Ad-hoc float reduction outside the blessed helpers.
    FloatFoldOrder,
    /// Bare `.lock().unwrap()` instead of a named `.expect("…")`.
    MutexPoison,
    /// Malformed or unknown allow-pragma.
    BadPragma,
}

impl Rule {
    /// The id used in pragmas and diagnostics.
    pub fn id(self) -> &'static str {
        match self {
            Rule::HashCollections => "hash-collections",
            Rule::WallClock => "wall-clock",
            Rule::AmbientEntropy => "ambient-entropy",
            Rule::UnstableSort => "unstable-sort",
            Rule::SubstrateCollections => "substrate-collections",
            Rule::StrayFile => "stray-file",
            Rule::ForbidUnsafe => "forbid-unsafe",
            Rule::GlobalStateRegistry => "global-state-registry",
            Rule::LockOrder => "lock-order",
            Rule::SendClean => "send-clean",
            Rule::FloatFoldOrder => "float-fold-order",
            Rule::MutexPoison => "mutex-poison",
            Rule::BadPragma => "bad-pragma",
        }
    }

    /// Parse a pragma rule id. Only line-scoped rules can be allowed,
    /// so the file-scoped ones (`stray-file`, `forbid-unsafe`) and
    /// `bad-pragma` itself are not recognised here.
    pub fn from_pragma_id(id: &str) -> Option<Rule> {
        match id {
            "hash-collections" => Some(Rule::HashCollections),
            "wall-clock" => Some(Rule::WallClock),
            "ambient-entropy" => Some(Rule::AmbientEntropy),
            "unstable-sort" => Some(Rule::UnstableSort),
            "substrate-collections" => Some(Rule::SubstrateCollections),
            "global-state-registry" => Some(Rule::GlobalStateRegistry),
            "lock-order" => Some(Rule::LockOrder),
            "send-clean" => Some(Rule::SendClean),
            "float-fold-order" => Some(Rule::FloatFoldOrder),
            "mutex-poison" => Some(Rule::MutexPoison),
            _ => None,
        }
    }

    /// Every rule, for `--list-rules` and the docs.
    pub fn all() -> &'static [Rule] {
        &[
            Rule::HashCollections,
            Rule::WallClock,
            Rule::AmbientEntropy,
            Rule::UnstableSort,
            Rule::SubstrateCollections,
            Rule::StrayFile,
            Rule::ForbidUnsafe,
            Rule::GlobalStateRegistry,
            Rule::LockOrder,
            Rule::SendClean,
            Rule::FloatFoldOrder,
            Rule::MutexPoison,
            Rule::BadPragma,
        ]
    }

    /// One-line description, for `--list-rules`.
    pub fn describe(self) -> &'static str {
        match self {
            Rule::HashCollections => "no HashMap/HashSet in sim crates",
            Rule::WallClock => "no Instant::now/SystemTime outside criterion/timeref",
            Rule::AmbientEntropy => "no thread_rng/OsRng/getrandom outside simcore::rng",
            Rule::UnstableSort => "no sort_unstable* without a key-totality pragma",
            Rule::SubstrateCollections => "no raw BTreeMap/BTreeSet in the grid host substrate",
            Rule::StrayFile => "no unreferenced or non-.rs files under src/",
            Rule::ForbidUnsafe => "crate roots must carry #![forbid(unsafe_code)]",
            Rule::GlobalStateRegistry => {
                "interior-mutable statics in sim crates must be declared in GLOBALS.toml"
            }
            Rule::LockOrder => {
                "registered locks must be acquired in strictly increasing rank order"
            }
            Rule::SendClean => "no Rc/RefCell/Cell reachable from serve-critical engine state",
            Rule::FloatFoldOrder => "no ad-hoc float reductions outside the blessed stats helpers",
            Rule::MutexPoison => ".lock() must use .expect(\"…\") with a named diagnostic",
            Rule::BadPragma => "pragmas must be `allow(<rule>) -- <reason>`",
        }
    }
}

/// One finding, pointing at a workspace-relative `path:line`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line number (1 for whole-file findings).
    pub line: usize,
    /// Which rule fired.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path,
            self.line,
            self.rule.id(),
            self.message
        )
    }
}

/// A file handed to [`lint`].
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// UTF-8 contents for `.rs` files and `GLOBALS.toml`; `None` for
    /// other files (which only the `stray-file` rule looks at).
    pub text: Option<String>,
}

impl SourceFile {
    /// Convenience constructor for tests and callers.
    pub fn new(path: &str, text: &str) -> SourceFile {
        SourceFile {
            path: path.to_string(),
            text: Some(text.to_string()),
        }
    }
}

/// Per-file pragma table: line number -> rules allowed on that line
/// and the next.
type Allows = BTreeMap<usize, Vec<Rule>>;

/// Parse allow-pragmas out of the lexed comments. Malformed pragmas
/// become `bad-pragma` diagnostics.
fn parse_pragmas(path: &str, comments: &[(usize, String)], diags: &mut Vec<Diagnostic>) -> Allows {
    let mut allows: Allows = BTreeMap::new();
    let marker = "simlint:";
    for (lineno, comment) in comments {
        let lineno = *lineno;
        let mut cursor = 0;
        while let Some(pos) = comment[cursor..].find(marker) {
            let after = &comment[cursor + pos + marker.len()..];
            cursor += pos + marker.len();
            let after = after.trim_start();
            let Some(rest) = after.strip_prefix("allow(") else {
                diags.push(Diagnostic {
                    path: path.to_string(),
                    line: lineno,
                    rule: Rule::BadPragma,
                    message: "expected `allow(<rule>) -- <reason>` after `simlint:`".into(),
                });
                continue;
            };
            let Some(close) = rest.find(')') else {
                diags.push(Diagnostic {
                    path: path.to_string(),
                    line: lineno,
                    rule: Rule::BadPragma,
                    message: "unclosed `allow(` pragma".into(),
                });
                continue;
            };
            let id = rest[..close].trim();
            let tail = rest[close + 1..].trim_start();
            let Some(rule) = Rule::from_pragma_id(id) else {
                diags.push(Diagnostic {
                    path: path.to_string(),
                    line: lineno,
                    rule: Rule::BadPragma,
                    message: format!("unknown or non-allowable rule `{id}` in pragma"),
                });
                continue;
            };
            let reason_ok = tail
                .strip_prefix("--")
                .map(|r| !r.trim().is_empty())
                .unwrap_or(false);
            if !reason_ok {
                diags.push(Diagnostic {
                    path: path.to_string(),
                    line: lineno,
                    rule: Rule::BadPragma,
                    message: format!("pragma `allow({id})` needs a justification: `-- <reason>`"),
                });
                continue;
            }
            allows.entry(lineno).or_default().push(rule);
        }
    }
    allows
}

fn allowed(allows: &Allows, rule: Rule, line: usize) -> bool {
    let on = |l: usize| allows.get(&l).map(|v| v.contains(&rule)).unwrap_or(false);
    on(line) || (line > 0 && on(line - 1))
}

/// Does `path` live in one of the sim crates?
fn in_sim_crate(path: &str) -> bool {
    SIM_CRATES
        .iter()
        .any(|c| path.starts_with(&format!("crates/{c}/")))
}

/// Sim-crate library source (not tests/benches): where statics must be
/// registered and the send-clean type graph lives.
fn in_sim_src(path: &str) -> bool {
    in_sim_crate(path) && path.contains("/src/")
}

fn in_wall_clock_shim(path: &str) -> bool {
    WALL_CLOCK_SHIMS
        .iter()
        .any(|c| path.starts_with(&format!("crates/{c}/")))
}

/// The top-level unit a path belongs to: `crates/<name>` or `""` for
/// the root package. Module references only count within their unit.
fn unit_of(path: &str) -> String {
    if let Some(rest) = path.strip_prefix("crates/") {
        match rest.find('/') {
            Some(cut) => format!("crates/{}", &rest[..cut]),
            None => String::new(),
        }
    } else {
        String::new()
    }
}

/// Is `path` a compilation root cargo discovers on its own (crate
/// roots, bin/test/bench/example targets)?
fn is_compilation_root(path: &str, unit: &str) -> bool {
    let local = if unit.is_empty() {
        path
    } else {
        match path.strip_prefix(&format!("{unit}/")) {
            Some(l) => l,
            None => return false,
        }
    };
    local == "src/lib.rs"
        || local == "src/main.rs"
        || local == "build.rs"
        || (local.starts_with("src/bin/") && local.ends_with(".rs"))
        || (local.starts_with("tests/") && local.ends_with(".rs"))
        || (local.starts_with("benches/") && local.ends_with(".rs"))
        || (local.starts_with("examples/") && local.ends_with(".rs"))
}

/// One lexed + item-parsed source file, ready for the rule passes.
struct Prep<'a> {
    file: &'a SourceFile,
    lexed: Lexed,
    items: Items,
    allows: Allows,
}

fn is_punct(toks: &[Tok], i: usize, c: char) -> bool {
    toks.get(i).is_some_and(|t| t.is_punct(c))
}

fn ident_at(toks: &[Tok], i: usize) -> Option<&str> {
    toks.get(i).and_then(|t| t.ident())
}

/// Classify a static's interior-mutability kind from its type tokens,
/// or `None` for plain (immutable) statics.
fn classify_static(s: &StaticDecl) -> Option<&'static str> {
    let has = |n: &str| s.ty.iter().any(|t| t == n);
    let base = if has("Mutex") {
        "mutex"
    } else if has("RwLock") {
        "rwlock"
    } else if has("OnceLock") || has("OnceCell") || has("LazyLock") {
        "once"
    } else if s.ty.iter().any(|t| t.starts_with("Atomic")) {
        "atomic"
    } else if has("RefCell") || has("Cell") || has("UnsafeCell") {
        "cell"
    } else {
        return None;
    };
    Some(if s.thread_local { "thread-local" } else { base })
}

/// Field type idents that break the Send-clean contract. `Cell` and
/// `RefCell` are matched as exact identifiers, so `OnceCell` (which is
/// Sync-safe behind `OnceLock`-style APIs) never fires.
fn send_unclean_ident(ty: &[String]) -> Option<&str> {
    ty.iter()
        .find(|t| matches!(t.as_str(), "Rc" | "RefCell" | "Cell" | "UnsafeCell"))
        .map(|s| s.as_str())
}

/// A lock acquisition observed while walking a function body.
struct Hold {
    name: String,
    depth: i32,
    binding: Option<String>,
}

/// A nested acquisition: `to` was taken while `from` was held.
struct LockEdge {
    from: String,
    to: String,
    path: String,
    line: usize,
    allowed: bool,
}

/// Run every rule over the given files. Paths are workspace-relative
/// with `/` separators; diagnostics come back sorted by (path, line).
pub fn lint(files: &[SourceFile]) -> Vec<Diagnostic> {
    let mut diags: Vec<Diagnostic> = Vec::new();

    // ---- Registry -------------------------------------------------
    let registry_text = files
        .iter()
        .find(|f| f.path == REGISTRY_PATH)
        .and_then(|f| f.text.as_deref());
    let (registry, reg_errors) = match registry_text {
        Some(text) => registry::parse(text),
        None => (Vec::new(), Vec::new()),
    };
    for (line, message) in reg_errors {
        diags.push(Diagnostic {
            path: REGISTRY_PATH.to_string(),
            line,
            rule: Rule::GlobalStateRegistry,
            message,
        });
    }
    for (i, e) in registry.iter().enumerate() {
        if registry[..i].iter().any(|p| p.name == e.name) {
            diags.push(Diagnostic {
                path: REGISTRY_PATH.to_string(),
                line: e.line,
                rule: Rule::GlobalStateRegistry,
                message: format!("duplicate registry entry for `{}`", e.name),
            });
        }
    }

    // ---- Per-file preparation ------------------------------------
    let mut preps: Vec<Prep> = Vec::new();
    for f in files {
        if !f.path.ends_with(".rs") {
            continue;
        }
        let Some(text) = &f.text else { continue };
        let lexed = lexer::lex(text);
        let items = parse::parse(&lexed.toks);
        let allows = parse_pragmas(&f.path, &lexed.comments, &mut diags);
        preps.push(Prep {
            file: f,
            lexed,
            items,
            allows,
        });
    }

    // Per-unit `mod name;` declarations (stray-file).
    let mut mod_decls: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for p in &preps {
        let decls = mod_decls.entry(unit_of(&p.file.path)).or_default();
        let toks = &p.lexed.toks;
        for i in 0..toks.len() {
            if toks[i].is_ident("mod") {
                if let Some(name) = ident_at(toks, i + 1) {
                    if is_punct(toks, i + 2, ';') {
                        decls.push(name.to_string());
                    }
                }
            }
        }
    }

    // ---- Token rules ---------------------------------------------
    for p in &preps {
        let path = &p.file.path;
        let toks = &p.lexed.toks;
        let push = |line: usize, rule: Rule, message: String, diags: &mut Vec<Diagnostic>| {
            if !allowed(&p.allows, rule, line) {
                diags.push(Diagnostic {
                    path: path.clone(),
                    line,
                    rule,
                    message,
                });
            }
        };

        for (i, t) in toks.iter().enumerate() {
            let Some(id) = t.ident() else { continue };
            match id {
                "HashMap" | "HashSet" if in_sim_crate(path) => push(
                    t.line,
                    Rule::HashCollections,
                    format!(
                        "`{id}` iterates in RandomState order; use \
                         `vgrid_simcore::DetMap`/`DetSet` in sim crates"
                    ),
                    &mut diags,
                ),
                "SystemTime" if !in_wall_clock_shim(path) => push(
                    t.line,
                    Rule::WallClock,
                    "host wall-clock reads are banned outside the criterion/timeref shims; \
                     simulated time comes from `vgrid_simcore::SimTime`"
                        .to_string(),
                    &mut diags,
                ),
                "Instant"
                    if !in_wall_clock_shim(path)
                        && is_punct(toks, i + 1, ':')
                        && is_punct(toks, i + 2, ':')
                        && ident_at(toks, i + 3) == Some("now") =>
                {
                    push(
                        t.line,
                        Rule::WallClock,
                        "host wall-clock reads are banned outside the criterion/timeref shims; \
                         simulated time comes from `vgrid_simcore::SimTime`"
                            .to_string(),
                        &mut diags,
                    )
                }
                "thread_rng" | "from_entropy" | "OsRng" | "getrandom" if path != ENTROPY_SHIM => {
                    push(
                        t.line,
                        Rule::AmbientEntropy,
                        "ambient entropy is banned outside `simcore::rng`; \
                         fork a seeded `SimRng` stream instead"
                            .to_string(),
                        &mut diags,
                    )
                }
                s if s.starts_with("sort_unstable") => push(
                    t.line,
                    Rule::UnstableSort,
                    "`sort_unstable*` reorders equal keys; prove the key is total and \
                     annotate, or use a stable sort"
                        .to_string(),
                    &mut diags,
                ),
                "BTreeMap" | "BTreeSet" if SUBSTRATE_FILES.contains(&path.as_str()) => push(
                    t.line,
                    Rule::SubstrateCollections,
                    "host-substrate state must use `vgrid_simcore::DetMap`/`DetSet` so the \
                     batched/hydrated equivalence contract stays visible in the types"
                        .to_string(),
                    &mut diags,
                ),
                _ => {}
            }
        }

        // mutex-poison: `.lock().unwrap()` anywhere in a sim crate.
        if in_sim_crate(path) {
            for i in 0..toks.len() {
                if toks[i].is_punct('.')
                    && ident_at(toks, i + 1) == Some("lock")
                    && is_punct(toks, i + 2, '(')
                    && is_punct(toks, i + 3, ')')
                    && is_punct(toks, i + 4, '.')
                    && ident_at(toks, i + 5) == Some("unwrap")
                {
                    let line = toks[i + 5].line;
                    push(
                        line,
                        Rule::MutexPoison,
                        "bare `.lock().unwrap()` loses the poison context; use \
                         `.lock().expect(\"<which lock> poisoned\")` so a crashed thread \
                         names the lock it corrupted"
                            .to_string(),
                        &mut diags,
                    );
                }
            }
        }

        // float-fold-order: `.sum()`/`.product()`/`.fold(…)` whose
        // statement mentions f32/f64 or a float literal, outside the
        // blessed fixed-op-order helpers.
        if in_sim_crate(path) && !FLOAT_FOLD_BLESSED.contains(&path.as_str()) {
            for i in 0..toks.len() {
                if !toks[i].is_punct('.') {
                    continue;
                }
                let Some(m) = ident_at(toks, i + 1) else {
                    continue;
                };
                if !matches!(m, "sum" | "product" | "fold") {
                    continue;
                }
                // Statement window: back to the previous `;`/`{`/`}`,
                // forward through the call's argument list.
                let mut a = i;
                while a > 0 {
                    match toks[a - 1].kind {
                        Kind::Punct(';') | Kind::Punct('{') | Kind::Punct('}') => break,
                        _ => a -= 1,
                    }
                }
                let mut b = i + 1;
                for j in i + 2..(i + 8).min(toks.len()) {
                    if toks[j].is_punct('(') {
                        b = match_paren(toks, j).unwrap_or(j);
                        break;
                    }
                }
                let floaty = toks[a..=b.min(toks.len() - 1)]
                    .iter()
                    .any(|t| t.is_float() || t.is_ident("f64") || t.is_ident("f32"));
                if floaty {
                    push(
                        toks[i + 1].line,
                        Rule::FloatFoldOrder,
                        format!(
                            "float `.{m}()` reduction: summation order changes the result \
                             bit-for-bit; use the fixed-op-order helpers in \
                             `vgrid_simcore::stats` or justify the op order with a pragma"
                        ),
                        &mut diags,
                    );
                }
            }
        }

        // forbid-unsafe: crate roots must carry the attribute.
        let is_crate_root =
            path == "src/lib.rs" || (path.starts_with("crates/") && path.ends_with("/src/lib.rs"));
        if is_crate_root {
            let has_forbid = (0..toks.len()).any(|i| {
                toks[i].is_punct('#')
                    && is_punct(toks, i + 1, '!')
                    && is_punct(toks, i + 2, '[')
                    && ident_at(toks, i + 3) == Some("forbid")
                    && is_punct(toks, i + 4, '(')
                    && ident_at(toks, i + 5) == Some("unsafe_code")
                    && is_punct(toks, i + 6, ')')
                    && is_punct(toks, i + 7, ']')
            });
            if !has_forbid {
                diags.push(Diagnostic {
                    path: path.clone(),
                    line: 1,
                    rule: Rule::ForbidUnsafe,
                    message: "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
                });
            }
        }
    }

    // ---- global-state-registry -----------------------------------
    let mut found: Vec<(&str, &str)> = Vec::new(); // (name, path) of classified statics
    for p in &preps {
        let path = &p.file.path;
        if !in_sim_src(path) {
            continue;
        }
        for s in &p.items.statics {
            let Some(kind) = classify_static(s) else {
                continue;
            };
            found.push((s.name.as_str(), path.as_str()));
            if allowed(&p.allows, Rule::GlobalStateRegistry, s.line) {
                continue;
            }
            match registry
                .iter()
                .find(|e| e.name == s.name && e.path == *path)
            {
                None => diags.push(Diagnostic {
                    path: path.clone(),
                    line: s.line,
                    rule: Rule::GlobalStateRegistry,
                    message: format!(
                        "interior-mutable static `{}` ({kind}) is not declared in GLOBALS.toml; \
                         register it with an owner, kind, and reset hook",
                        s.name
                    ),
                }),
                Some(e) if e.kind != kind => diags.push(Diagnostic {
                    path: path.clone(),
                    line: s.line,
                    rule: Rule::GlobalStateRegistry,
                    message: format!(
                        "static `{}` is `{kind}` in code but `{}` in GLOBALS.toml",
                        s.name, e.kind
                    ),
                }),
                Some(_) => {}
            }
        }
    }
    for e in &registry {
        if !found.iter().any(|(n, p)| *n == e.name && *p == e.path) {
            diags.push(Diagnostic {
                path: REGISTRY_PATH.to_string(),
                line: e.line,
                rule: Rule::GlobalStateRegistry,
                message: format!(
                    "registry entry `{}` has no matching static in `{}`; \
                     remove the entry or fix its path",
                    e.name, e.path
                ),
            });
        }
    }

    // ---- send-clean ----------------------------------------------
    // (a) Interior-mutability cells in sim-crate statics (e.g. the
    // thread-local arena) need an explicit justification.
    for p in &preps {
        let path = &p.file.path;
        if !in_sim_src(path) {
            continue;
        }
        for s in &p.items.statics {
            if let Some(bad) = send_unclean_ident(&s.ty) {
                if !allowed(&p.allows, Rule::SendClean, s.line) {
                    diags.push(Diagnostic {
                        path: path.clone(),
                        line: s.line,
                        rule: Rule::SendClean,
                        message: format!(
                            "`{bad}` in static `{}`: cell state is invisible to the \
                             Send checker; justify with a pragma that it never crosses \
                             threads, or use a lock",
                            s.name
                        ),
                    });
                }
            }
        }
    }
    // (b) Reachability from the serve-critical roots over field types.
    {
        let mut type_map: BTreeMap<&str, Vec<(usize, usize)>> = BTreeMap::new();
        for (pi, p) in preps.iter().enumerate() {
            if !in_sim_src(&p.file.path) {
                continue;
            }
            for (ti, td) in p.items.types.iter().enumerate() {
                type_map.entry(td.name.as_str()).or_default().push((pi, ti));
            }
        }
        let mut reach: Vec<&str> = SEND_CLEAN_ROOTS.to_vec();
        let mut queue: Vec<&str> = reach.clone();
        while let Some(name) = queue.pop() {
            let Some(defs) = type_map.get(name) else {
                continue;
            };
            for &(pi, ti) in defs {
                for field in &preps[pi].items.types[ti].fields {
                    for ty in &field.ty {
                        if type_map.contains_key(ty.as_str()) && !reach.contains(&ty.as_str()) {
                            reach.push(ty.as_str());
                            queue.push(ty.as_str());
                        }
                    }
                }
            }
        }
        for name in &reach {
            let Some(defs) = type_map.get(name) else {
                continue;
            };
            for &(pi, ti) in defs {
                let p = &preps[pi];
                let td = &p.items.types[ti];
                for field in &td.fields {
                    if let Some(bad) = send_unclean_ident(&field.ty) {
                        if !allowed(&p.allows, Rule::SendClean, field.line) {
                            diags.push(Diagnostic {
                                path: p.file.path.clone(),
                                line: field.line,
                                rule: Rule::SendClean,
                                message: format!(
                                    "`{bad}` in `{}` is reachable from the serve-critical \
                                     roots ({}); engine and cache state must be Send-clean",
                                    td.name,
                                    SEND_CLEAN_ROOTS.join("/")
                                ),
                            });
                        }
                    }
                }
            }
        }
    }

    // ---- lock-order ----------------------------------------------
    let lock_ranks: BTreeMap<&str, Option<u32>> = registry
        .iter()
        .filter(|e| matches!(e.kind.as_str(), "mutex" | "rwlock"))
        .map(|e| (e.name.as_str(), e.rank))
        .collect();
    let mut edges: Vec<LockEdge> = Vec::new();
    for p in &preps {
        let path = &p.file.path;
        if !in_sim_crate(path) {
            continue;
        }
        let toks = &p.lexed.toks;
        for f in &p.items.fns {
            let (open, close) = f.body;
            let mut depth = 0i32;
            let mut held: Vec<Hold> = Vec::new();
            let mut i = open;
            while i <= close {
                let t = &toks[i];
                match &t.kind {
                    Kind::Punct('{') => depth += 1,
                    Kind::Punct('}') => {
                        depth -= 1;
                        held.retain(|h| h.depth <= depth);
                    }
                    // A guard never bound to a name is a temporary:
                    // dropped at the end of its statement.
                    Kind::Punct(';') => held.retain(|h| h.binding.is_some() || h.depth != depth),
                    Kind::Ident(name) => {
                        if name == "drop"
                            && is_punct(toks, i + 1, '(')
                            && is_punct(toks, i + 3, ')')
                        {
                            if let Some(b) = ident_at(toks, i + 2) {
                                held.retain(|h| h.binding.as_deref() != Some(b));
                            }
                        } else if lock_ranks.contains_key(name.as_str())
                            && is_punct(toks, i + 1, '.')
                            && matches!(ident_at(toks, i + 2), Some("lock" | "read" | "write"))
                            && is_punct(toks, i + 3, '(')
                        {
                            let line = t.line;
                            let is_allowed = allowed(&p.allows, Rule::LockOrder, line);
                            // `let [mut] name = GLOBAL.lock()` binding.
                            let binding = if i >= 2 && toks[i - 1].is_punct('=') {
                                ident_at(toks, i - 2)
                                    .filter(|b| *b != "mut" && *b != "let")
                                    .map(str::to_string)
                            } else {
                                None
                            };
                            for h in &held {
                                if h.name == *name {
                                    if !is_allowed {
                                        diags.push(Diagnostic {
                                            path: path.clone(),
                                            line,
                                            rule: Rule::LockOrder,
                                            message: format!(
                                                "`{name}` re-acquired while already held in \
                                                 `{}` — self-deadlock",
                                                f.name
                                            ),
                                        });
                                    }
                                } else {
                                    edges.push(LockEdge {
                                        from: h.name.clone(),
                                        to: name.clone(),
                                        path: path.clone(),
                                        line,
                                        allowed: is_allowed,
                                    });
                                }
                            }
                            held.push(Hold {
                                name: name.clone(),
                                depth,
                                binding,
                            });
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
        }
    }
    // Rank inversions: an edge A -> B needs rank(A) < rank(B).
    let mut inversion: Vec<(&str, &str)> = Vec::new();
    for e in &edges {
        let (Some(&Some(rf)), Some(&Some(rt))) = (
            lock_ranks.get(e.from.as_str()),
            lock_ranks.get(e.to.as_str()),
        ) else {
            continue; // missing rank already diagnosed by the registry
        };
        if rf >= rt {
            inversion.push((e.from.as_str(), e.to.as_str()));
            if !e.allowed {
                diags.push(Diagnostic {
                    path: e.path.clone(),
                    line: e.line,
                    rule: Rule::LockOrder,
                    message: format!(
                        "lock-order inversion: `{}` (rank {rt}) acquired while `{}` \
                         (rank {rf}) is held; ranks must strictly increase",
                        e.to, e.from
                    ),
                });
            }
        }
    }
    // Cycle backstop: only reported when no inversion already covers
    // it (with all ranks present, any cycle contains an inversion).
    if let Some(cycle) = find_cycle(&edges) {
        let covered = cycle.windows(2).any(|w| inversion.contains(&(w[0], w[1])));
        if !covered {
            let site = edges
                .iter()
                .find(|e| e.from == cycle[0] && e.to == cycle[1])
                .expect("cycle edges come from the edge list");
            diags.push(Diagnostic {
                path: site.path.clone(),
                line: site.line,
                rule: Rule::LockOrder,
                message: format!("lock acquisition cycle: {}", cycle.join(" -> ")),
            });
        }
    }

    // ---- stray-file -----------------------------------------------
    for f in files {
        let under_src = f.path.starts_with("src/") || f.path.contains("/src/");
        if !under_src {
            continue;
        }
        if !f.path.ends_with(".rs") {
            diags.push(Diagnostic {
                path: f.path.clone(),
                line: 1,
                rule: Rule::StrayFile,
                message: "non-`.rs` file under src/; delete it or move it out of the \
                          source tree"
                    .to_string(),
            });
            continue;
        }
        let unit = unit_of(&f.path);
        if is_compilation_root(&f.path, &unit) {
            continue;
        }
        let file_name = f.path.rsplit('/').next().unwrap_or(&f.path);
        let mod_name = if file_name == "mod.rs" {
            let parent = f.path.rsplit('/').nth(1).unwrap_or("");
            parent.to_string()
        } else {
            file_name.trim_end_matches(".rs").to_string()
        };
        let declared = mod_decls
            .get(&unit)
            .map(|v| v.contains(&mod_name))
            .unwrap_or(false);
        if !declared {
            diags.push(Diagnostic {
                path: f.path.clone(),
                line: 1,
                rule: Rule::StrayFile,
                message: format!(
                    "unreferenced source file: no `mod {mod_name};` in {}",
                    if unit.is_empty() {
                        "the root package"
                    } else {
                        &unit
                    }
                ),
            });
        }
    }

    diags.sort();
    diags.dedup();
    diags
}

/// DFS for a cycle in the (deduplicated) lock acquisition graph.
/// Returns the cycle as `[a, b, …, a]` node names.
fn find_cycle(edges: &[LockEdge]) -> Option<Vec<&str>> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for e in edges {
        let succs = adj.entry(e.from.as_str()).or_default();
        if !succs.contains(&e.to.as_str()) {
            succs.push(e.to.as_str());
        }
    }
    let mut done: Vec<&str> = Vec::new();
    for &start in adj.keys().collect::<Vec<_>>() {
        if done.contains(&start) {
            continue;
        }
        let mut path: Vec<&str> = Vec::new();
        // Recursive DFS with an explicit path; small graphs only.
        fn dfs<'e>(
            node: &'e str,
            adj: &BTreeMap<&'e str, Vec<&'e str>>,
            path: &mut Vec<&'e str>,
            done: &mut Vec<&'e str>,
        ) -> Option<Vec<&'e str>> {
            if let Some(pos) = path.iter().position(|&n| n == node) {
                let mut cycle: Vec<&str> = path[pos..].to_vec();
                cycle.push(node);
                return Some(cycle);
            }
            if done.contains(&node) {
                return None;
            }
            path.push(node);
            if let Some(succs) = adj.get(node) {
                for &s in succs {
                    if let Some(c) = dfs(s, adj, path, done) {
                        return Some(c);
                    }
                }
            }
            path.pop();
            done.push(node);
            None
        }
        if let Some(c) = dfs(start, &adj, &mut path, &mut done) {
            return Some(c);
        }
    }
    None
}

const SKIP_DIRS: &[&str] = &["target", ".git", ".claude", "node_modules"];

/// Walk the workspace at `root` and collect every `.rs` file, every
/// other file that sits under a `src/` directory (for the `stray-file`
/// rule), and the `GLOBALS.toml` registry. Paths come back
/// workspace-relative with `/` separators, sorted.
pub fn collect_tree(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
                continue;
            }
            let rel = path
                .strip_prefix(root)
                .expect("walk stays under root")
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            let is_rs = rel.ends_with(".rs");
            let is_registry = rel == REGISTRY_PATH;
            let under_src = rel.starts_with("src/") || rel.contains("/src/");
            if !is_rs && !under_src && !is_registry {
                continue;
            }
            let text = if is_rs || is_registry {
                fs::read_to_string(&path).ok()
            } else {
                None
            };
            out.push(SourceFile { path: rel, text });
        }
    }
    out.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const ROOT_ATTR: &str = "#![forbid(unsafe_code)]\n";

    #[test]
    fn tokens_in_strings_and_comments_never_fire() {
        let files = [SourceFile::new(
            "crates/grid/src/lib.rs",
            &format!("{ROOT_ATTR}// HashMap in prose\nlet s = \"HashMap\";\n"),
        )];
        assert!(lint(&files).is_empty());
    }

    #[test]
    fn multiline_lock_unwrap_is_caught() {
        let files = [SourceFile::new(
            "crates/core/src/lib.rs",
            &format!("{ROOT_ATTR}fn f() {{\n    cache\n        .lock()\n        .unwrap();\n}}\n"),
        )];
        let diags = lint(&files);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, Rule::MutexPoison);
        assert_eq!(diags[0].line, 5);
    }

    #[test]
    fn pragma_on_line_above_suppresses() {
        let files = [SourceFile::new(
            "crates/grid/src/lib.rs",
            &format!(
                "{ROOT_ATTR}// simlint: allow(hash-collections) -- fixture, order never observed\nuse std::collections::HashMap;\n"
            ),
        )];
        assert!(lint(&files).is_empty());
    }
}
