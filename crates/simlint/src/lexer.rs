//! Hand-rolled Rust lexer for the lint pass.
//!
//! Produces a flat token stream (identifiers, lifetimes, string/char
//! literals, numbers, single-char punctuation) with 1-based line
//! numbers, plus a side-channel of comments for pragma parsing. The
//! lexer is deliberately lossy where the rules don't care: string and
//! char literal *contents* are dropped (so banned tokens inside
//! literals can never fire), numeric literals keep only their
//! float-ness, and whitespace vanishes entirely — which is what lets
//! multi-line constructs like `.lock()\n.unwrap()` match as one token
//! sequence.
//!
//! Handled: line comments, nested block comments, raw strings with any
//! hash depth, byte strings/chars, raw identifiers (`r#match` lexes as
//! the identifier `match`), char-literal vs. lifetime disambiguation,
//! escapes, hex/octal/binary integers, float literals with exponents
//! and `f32`/`f64` suffixes.

/// What a token is. `Str` covers every string/char/byte literal; its
/// contents are intentionally not retained.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword (raw identifiers are unprefixed).
    Ident(String),
    /// Lifetime, without the leading quote (`'a` -> `a`).
    Lifetime(String),
    /// String, char, byte-string or byte-char literal.
    Str,
    /// Numeric literal; `float` is true for decimal points, exponents
    /// and `f32`/`f64` suffixes.
    Num { float: bool },
    /// Any other single character.
    Punct(char),
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    pub line: usize,
    pub kind: Kind,
}

impl Tok {
    /// The identifier text, if this is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            Kind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// Is this exactly the identifier `s`?
    pub fn is_ident(&self, s: &str) -> bool {
        self.ident() == Some(s)
    }

    /// Is this exactly the punctuation char `c`?
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == Kind::Punct(c)
    }

    /// Is this a float literal?
    pub fn is_float(&self) -> bool {
        matches!(self.kind, Kind::Num { float: true })
    }
}

/// Lexer output: the token stream plus every comment, keyed by the
/// line the comment starts on (pragmas in multi-line block comments
/// attach to the block's first line).
#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub comments: Vec<(usize, String)>,
}

fn is_ident_start(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphabetic()
}

fn is_ident_cont(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphanumeric()
}

/// Lex `text` into tokens and comments. Never fails: unrecognised
/// bytes are skipped, unterminated literals run to end of input.
pub fn lex(text: &str) -> Lexed {
    let b = text.as_bytes();
    let n = b.len();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1usize;

    while i < n {
        let c = b[i];
        if c == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Line comment.
        if c == b'/' && i + 1 < n && b[i + 1] == b'/' {
            let start = i;
            while i < n && b[i] != b'\n' {
                i += 1;
            }
            out.comments.push((line, text[start..i].to_string()));
            continue;
        }
        // Block comment (nested).
        if c == b'/' && i + 1 < n && b[i + 1] == b'*' {
            let start = i;
            let start_line = line;
            let mut depth = 1usize;
            i += 2;
            while i < n && depth > 0 {
                if b[i] == b'/' && i + 1 < n && b[i + 1] == b'*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == b'*' && i + 1 < n && b[i + 1] == b'/' {
                    depth -= 1;
                    i += 2;
                } else {
                    if b[i] == b'\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            out.comments.push((start_line, text[start..i].to_string()));
            continue;
        }
        // Raw strings (r"", r#""#, br#""#) and raw identifiers (r#ident).
        if c == b'r' || (c == b'b' && i + 1 < n && b[i + 1] == b'r') {
            let mut j = i + 1 + usize::from(c == b'b');
            let mut hashes = 0usize;
            while j < n && b[j] == b'#' {
                hashes += 1;
                j += 1;
            }
            if j < n && b[j] == b'"' {
                let tok_line = line;
                i = j + 1;
                'raw: while i < n {
                    if b[i] == b'\n' {
                        line += 1;
                    } else if b[i] == b'"' {
                        let mut k = 0;
                        while k < hashes && i + 1 + k < n && b[i + 1 + k] == b'#' {
                            k += 1;
                        }
                        if k == hashes {
                            i += 1 + hashes;
                            break 'raw;
                        }
                    }
                    i += 1;
                }
                out.toks.push(Tok {
                    line: tok_line,
                    kind: Kind::Str,
                });
                continue;
            }
            if c == b'r' && hashes == 1 && j < n && is_ident_start(b[j]) {
                // Raw identifier: lex the ident without the `r#`.
                let start = j;
                i = j;
                while i < n && is_ident_cont(b[i]) {
                    i += 1;
                }
                out.toks.push(Tok {
                    line,
                    kind: Kind::Ident(text[start..i].to_string()),
                });
                continue;
            }
            // Plain identifier starting with `r`/`b`: fall through.
        }
        // Byte string / byte char: drop the `b` prefix.
        let (c, lit_at) = if c == b'b' && i + 1 < n && (b[i + 1] == b'"' || b[i + 1] == b'\'') {
            (b[i + 1], i + 1)
        } else {
            (c, i)
        };
        // String literal (escapes honoured, may span lines).
        if c == b'"' {
            let tok_line = line;
            i = lit_at + 1;
            while i < n {
                match b[i] {
                    b'\\' => i += 2,
                    b'\n' => {
                        line += 1;
                        i += 1;
                    }
                    b'"' => {
                        i += 1;
                        break;
                    }
                    _ => i += 1,
                }
            }
            out.toks.push(Tok {
                line: tok_line,
                kind: Kind::Str,
            });
            continue;
        }
        // Char literal vs. lifetime.
        if c == b'\'' {
            i = lit_at;
            if i + 1 < n && b[i + 1] == b'\\' {
                // Escaped char: consume up to the closing quote.
                i += 2;
                while i < n && b[i] != b'\'' && b[i] != b'\n' {
                    i += 1;
                }
                i = (i + 1).min(n);
                out.toks.push(Tok {
                    line,
                    kind: Kind::Str,
                });
                continue;
            }
            if i + 1 < n {
                let ch_len = utf8_len(b[i + 1]);
                let close = i + 1 + ch_len;
                if close < n && b[close] == b'\'' {
                    i = close + 1;
                    out.toks.push(Tok {
                        line,
                        kind: Kind::Str,
                    });
                    continue;
                }
            }
            // Lifetime: consume the identifier after the quote.
            let start = i + 1;
            i += 1;
            while i < n && is_ident_cont(b[i]) {
                i += 1;
            }
            out.toks.push(Tok {
                line,
                kind: Kind::Lifetime(text[start..i].to_string()),
            });
            continue;
        }
        // Numeric literal.
        if c.is_ascii_digit() {
            let mut float = false;
            if c == b'0' && i + 1 < n && matches!(b[i + 1] | 0x20, b'x' | b'o' | b'b') {
                // Hex/octal/binary: digits then any suffix, never float.
                i += 2;
                while i < n && is_ident_cont(b[i]) {
                    i += 1;
                }
            } else {
                while i < n && (b[i].is_ascii_digit() || b[i] == b'_') {
                    i += 1;
                }
                // Decimal point: `1.5` and `1.` are floats; `1..` is a
                // range and `1.max(…)` a method call.
                if i < n && b[i] == b'.' {
                    let nxt = if i + 1 < n { b[i + 1] } else { b' ' };
                    if nxt.is_ascii_digit() {
                        float = true;
                        i += 1;
                        while i < n && (b[i].is_ascii_digit() || b[i] == b'_') {
                            i += 1;
                        }
                    } else if nxt != b'.' && !is_ident_start(nxt) {
                        float = true;
                        i += 1;
                    }
                }
                // Exponent.
                if i < n && (b[i] | 0x20) == b'e' {
                    let (sign, digit_at) = match b.get(i + 1) {
                        Some(b'+') | Some(b'-') => (1, i + 2),
                        _ => (0, i + 1),
                    };
                    if digit_at < n && b[digit_at].is_ascii_digit() {
                        float = true;
                        i += 1 + sign;
                        while i < n && (b[i].is_ascii_digit() || b[i] == b'_') {
                            i += 1;
                        }
                    }
                }
                // Suffix (`u64`, `f32`, …).
                let sfx_start = i;
                while i < n && is_ident_cont(b[i]) {
                    i += 1;
                }
                if matches!(&text[sfx_start..i], "f32" | "f64") {
                    float = true;
                }
            }
            out.toks.push(Tok {
                line,
                kind: Kind::Num { float },
            });
            continue;
        }
        // Identifier / keyword.
        if is_ident_start(c) {
            let start = i;
            while i < n && is_ident_cont(b[i]) {
                i += 1;
            }
            out.toks.push(Tok {
                line,
                kind: Kind::Ident(text[start..i].to_string()),
            });
            continue;
        }
        // Punctuation (non-ASCII bytes outside literals are skipped).
        if c < 0x80 {
            out.toks.push(Tok {
                line,
                kind: Kind::Punct(c as char),
            });
        }
        i += 1;
    }

    out
}

fn utf8_len(first: u8) -> usize {
    match first {
        b if b < 0x80 => 1,
        b if b >= 0xF0 => 4,
        b if b >= 0xE0 => 3,
        _ => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .iter()
            .filter_map(|t| t.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_tokens() {
        let src = "let x = 1; // note: HashMap here\nlet s = \"HashMap\";\n";
        let l = lex(src);
        assert!(!idents(src).iter().any(|s| s == "HashMap"));
        assert_eq!(l.comments.len(), 1);
        assert_eq!(l.comments[0].0, 1);
        assert!(l.comments[0].1.contains("HashMap here"));
    }

    #[test]
    fn raw_strings_and_lifetimes() {
        let src = "fn f<'a>(x: &'a str) { let r = r#\"SystemTime\"#; let c = 'x'; }\n";
        let ids = idents(src);
        assert!(!ids.iter().any(|s| s == "SystemTime"));
        let l = lex(src);
        assert!(l
            .toks
            .iter()
            .any(|t| matches!(&t.kind, Kind::Lifetime(a) if a == "a")));
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* one /* two */ still */ b\n";
        let ids = idents(src);
        assert_eq!(ids, ["a", "b"]);
        assert!(lex(src).comments[0].1.contains("still"));
    }

    #[test]
    fn raw_identifiers_unprefix() {
        assert_eq!(idents("let r#match = 1;"), ["let", "match"]);
    }

    #[test]
    fn float_detection() {
        let l = lex("a(1.5, 2, 0x1F, 3f64, 2.5e-3, 1..4, x.0)");
        let floats: Vec<bool> = l
            .toks
            .iter()
            .filter_map(|t| match t.kind {
                Kind::Num { float } => Some(float),
                _ => None,
            })
            .collect();
        // 1.5 float, 2 int, 0x1F int, 3f64 float, 2.5e-3 float,
        // 1 and 4 ints (range), 0 int (tuple index).
        assert_eq!(
            floats,
            [true, false, false, true, true, false, false, false]
        );
    }

    #[test]
    fn multiline_chains_are_one_sequence() {
        let l = lex("x\n  .lock()\n  .unwrap();");
        let sig: Vec<String> = l
            .toks
            .iter()
            .map(|t| match &t.kind {
                Kind::Ident(s) => s.clone(),
                Kind::Punct(c) => c.to_string(),
                _ => String::new(),
            })
            .collect();
        assert_eq!(sig.join(""), "x.lock().unwrap();");
        assert_eq!(l.toks.last().unwrap().line, 3);
    }

    #[test]
    fn line_numbers_track_multiline_strings() {
        let l = lex("let a = \"one\ntwo\";\nlet b = 1;");
        let b_tok = l.toks.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b_tok.line, 3);
    }
}
