//! # vgrid-simobs
//!
//! Deterministic observability for the `vgrid` testbed: a metrics
//! registry every simulation layer publishes into, a Chrome-trace /
//! Perfetto JSON exporter for [`vgrid_simcore::TraceEvent`] streams, and
//! a per-run manifest that pins what a run was (config digest, seed,
//! scheduler mode) next to what it measured (metric snapshot).
//!
//! ## Determinism contract (DESIGN.md §11)
//!
//! Everything this crate renders is a pure function of simulation state,
//! which is itself a pure function of `(config, seed)`:
//!
//! * maps are [`vgrid_simcore::DetMap`]-backed, so iteration — and
//!   therefore JSON key order — is lexicographic, never hash order;
//! * timestamps are virtual ([`vgrid_simcore::SimTime`]), never wall
//!   clock; wall time is *reported* by callers on stderr but never
//!   written into an artifact that CI byte-compares;
//! * floats are formatted with the testbed's round-trip rule (shortest
//!   representation that reparses exactly), so rendering is stable
//!   across runs and platforms.
//!
//! The upshot: same-seed runs emit byte-identical metrics manifests and
//! trace files, and CI gates them with `cmp` exactly like
//! `EXPERIMENTS.md`.

#![forbid(unsafe_code)]

pub mod chrome;
pub mod json;
pub mod manifest;
pub mod metrics;

pub use chrome::ChromeTraceBuilder;
pub use manifest::{fnv1a64, RunManifest};
pub use metrics::{Histogram, MetricsRegistry};
