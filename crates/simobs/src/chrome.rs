//! Chrome-trace / Perfetto JSON export.
//!
//! Renders [`TraceEvent`] streams and per-phase profiling spans into the
//! Chrome trace-event JSON format (the `{"traceEvents":[...]}` flavour),
//! which `chrome://tracing` and [ui.perfetto.dev] load directly.
//!
//! Layout: each simulated trial becomes one *process* (pid + a
//! `process_name` metadata record); each [`TraceCategory`] becomes one
//! *thread* track inside it (fixed tid per category, so track order
//! never depends on which categories happened to fire). `TraceEvent`s
//! are instant events (`ph:"i"`) and profiling phases are duration
//! spans (`ph:"X"`), both keyed by **virtual time**: `ts` is simulated
//! microseconds, rendered with a fixed six-digit picosecond fraction so
//! output is byte-stable. No wall-clock value is ever written here —
//! wall time is reported on stderr by the CLI and never gated.
//!
//! [ui.perfetto.dev]: https://ui.perfetto.dev

use crate::json;
use vgrid_simcore::time::PS_PER_US;
use vgrid_simcore::{SimTime, TraceCategory, TraceEvent};

/// Fixed track id and display name for a category; tids start at 1 so
/// tid 0 stays free for per-trial phase spans.
fn category_track(cat: TraceCategory) -> (u32, &'static str) {
    match cat {
        TraceCategory::Sched => (1, "sched"),
        TraceCategory::Io => (2, "io"),
        TraceCategory::Net => (3, "net"),
        TraceCategory::Vmm => (4, "vmm"),
        TraceCategory::Clock => (5, "clock"),
        TraceCategory::Workload => (6, "workload"),
        TraceCategory::Grid => (7, "grid"),
        TraceCategory::Fault => (8, "fault"),
    }
}

/// Every category in fixed track order (metadata emission order).
const ALL_CATEGORIES: [TraceCategory; 8] = [
    TraceCategory::Sched,
    TraceCategory::Io,
    TraceCategory::Net,
    TraceCategory::Vmm,
    TraceCategory::Clock,
    TraceCategory::Workload,
    TraceCategory::Grid,
    TraceCategory::Fault,
];

/// Simulated time as a Chrome `ts` value: microseconds with an exact
/// six-digit (picosecond-resolution) fraction.
fn ts(time: SimTime) -> String {
    let ps = time.as_picos();
    format!("{}.{:06}", ps / PS_PER_US, ps % PS_PER_US)
}

/// Builds a Chrome trace document; events render in insertion order, so
/// callers add trials in deterministic (label, repetition) order and the
/// whole document is byte-stable.
#[derive(Debug, Default)]
pub struct ChromeTraceBuilder {
    events: Vec<String>,
}

impl ChromeTraceBuilder {
    /// An empty trace.
    pub fn new() -> Self {
        ChromeTraceBuilder::default()
    }

    fn meta(&mut self, pid: u32, tid: u32, which: &str, name: &str) {
        self.events.push(json::object(&[
            ("args", json::object(&[("name", json::string(name))])),
            ("name", json::string(which)),
            ("ph", json::string("M")),
            ("pid", pid.to_string()),
            ("tid", tid.to_string()),
        ]));
    }

    /// Register one trial as a Perfetto process: names the process and
    /// lays out one thread track per trace category plus the phase
    /// track (tid 0).
    pub fn add_trial(&mut self, pid: u32, name: &str) {
        self.meta(pid, 0, "process_name", name);
        self.meta(pid, 0, "thread_name", "phases");
        for cat in ALL_CATEGORIES {
            let (tid, track) = category_track(cat);
            self.meta(pid, tid, "thread_name", track);
        }
    }

    /// Add one recorded [`TraceEvent`] as an instant on its category
    /// track.
    pub fn add_event(&mut self, pid: u32, ev: &TraceEvent) {
        let (tid, track) = category_track(ev.category);
        self.events.push(json::object(&[
            ("cat", json::string(track)),
            ("name", json::string(&ev.message)),
            ("ph", json::string("i")),
            ("pid", pid.to_string()),
            ("s", json::string("t")),
            ("tid", tid.to_string()),
            ("ts", ts(ev.time)),
        ]));
    }

    /// Add a duration span (`ph:"X"`) in virtual time on the trial's
    /// phase track.
    pub fn add_phase_span(&mut self, pid: u32, name: &str, start: SimTime, end: SimTime) {
        let dur_ps = end.as_picos().saturating_sub(start.as_picos());
        self.events.push(json::object(&[
            ("cat", json::string("phase")),
            (
                "dur",
                format!("{}.{:06}", dur_ps / PS_PER_US, dur_ps % PS_PER_US),
            ),
            ("name", json::string(name)),
            ("ph", json::string("X")),
            ("pid", pid.to_string()),
            ("tid", "0".to_string()),
            ("ts", ts(start)),
        ]));
    }

    /// Number of records added so far (metadata included).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been added.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Render the complete document.
    pub fn render(&self) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            out.push_str(ev);
        }
        out.push_str("\n]}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ts_is_exact_microseconds() {
        assert_eq!(ts(SimTime::from_micros(3)), "3.000000");
        assert_eq!(ts(SimTime::from_picos(1_500_000)), "1.500000");
        assert_eq!(ts(SimTime::from_picos(7)), "0.000007");
    }

    #[test]
    fn tracks_are_fixed_and_distinct() {
        let mut seen = std::collections::BTreeSet::new();
        for cat in ALL_CATEGORIES {
            let (tid, name) = category_track(cat);
            assert!(tid >= 1);
            assert!(seen.insert(tid), "duplicate tid for {name}");
        }
    }

    #[test]
    fn render_is_deterministic_and_ordered() {
        let build = || {
            let mut b = ChromeTraceBuilder::new();
            b.add_trial(1, "trial-a");
            b.add_event(
                1,
                &TraceEvent {
                    time: SimTime::from_millis(2),
                    category: TraceCategory::Vmm,
                    message: "exit".into(),
                },
            );
            b.add_phase_span(1, "run", SimTime::ZERO, SimTime::from_secs(1));
            b.render()
        };
        let doc = build();
        assert_eq!(doc, build());
        assert!(doc.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(doc.contains("\"process_name\""));
        assert!(doc.contains("\"ph\":\"i\""));
        assert!(doc.contains("\"ph\":\"X\""));
        assert!(doc.contains("\"dur\":1000000.000000"));
        assert!(doc.ends_with("\n]}\n"));
    }

    #[test]
    fn empty_builder_renders_valid_shell() {
        let b = ChromeTraceBuilder::new();
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
        assert_eq!(
            b.render(),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n]}\n"
        );
    }
}
