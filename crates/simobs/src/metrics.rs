//! The deterministic metrics registry.
//!
//! Every simulation layer (os, vmm, grid, the experiment engine)
//! publishes named counters, gauges and fixed-bucket histograms into a
//! [`MetricsRegistry`]. Like [`vgrid_simcore::EventLoopStats`], a
//! registry is mergeable: per-repetition registries fold into a per-run
//! registry with plain addition, so the fold is order-insensitive and
//! the aggregate is a pure function of the set of publications.
//!
//! Naming convention: dotted lower-case paths rooted at the publishing
//! layer — `os.fs.read_bytes`, `vmm.exits.disk`, `grid.fault_transitions`,
//! `engine.reps`. [`vgrid_simcore::DetMap`] keeps JSON key order
//! lexicographic regardless of publication order.

use crate::json;
use vgrid_simcore::DetMap;

/// A fixed-bucket histogram over `u64` samples.
///
/// Buckets are defined by a fixed, ascending list of inclusive upper
/// bounds plus an implicit overflow bucket; merging requires identical
/// bounds. Bounds are fixed at construction so that two registries
/// produced by different repetitions always agree on shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    total: u64,
    sum: u128,
}

impl Histogram {
    /// A histogram with the given inclusive upper bounds (must be
    /// strictly ascending and non-empty).
    pub fn new(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            total: 0,
            sum: 0,
        }
    }

    /// Power-of-two byte-size buckets (512 B .. 256 MiB), the default
    /// shape for I/O request and transfer sizes.
    pub fn byte_sizes() -> Self {
        Histogram::new(&[512, 4 << 10, 64 << 10, 1 << 20, 16 << 20, 256 << 20])
    }

    /// Record one sample.
    pub fn observe(&mut self, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.total += 1;
        self.sum += value as u128;
    }

    /// Total number of samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Per-bucket counts (last entry is the overflow bucket).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Fold another histogram of identical shape into this one.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bounds, other.bounds, "histogram shapes must match");
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.total += other.total;
        self.sum += other.sum;
    }

    fn render_json(&self) -> String {
        json::object(&[
            (
                "bounds",
                json::array(
                    &self
                        .bounds
                        .iter()
                        .map(|b| b.to_string())
                        .collect::<Vec<_>>(),
                ),
            ),
            (
                "counts",
                json::array(
                    &self
                        .counts
                        .iter()
                        .map(|c| c.to_string())
                        .collect::<Vec<_>>(),
                ),
            ),
            ("sum", self.sum.to_string()),
            ("total", self.total.to_string()),
        ])
    }
}

/// Deterministic, mergeable registry of named metrics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: DetMap<String, u64>,
    gauges: DetMap<String, f64>,
    histograms: DetMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Add `delta` to the named counter (creating it at zero).
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        *self.counters.or_insert_with(name.to_string(), || 0) += delta;
    }

    /// Add `delta` to the named gauge (creating it at zero). Gauges are
    /// additive float quantities — per-repetition contributions sum
    /// under [`MetricsRegistry::merge`], like
    /// `EventLoopStats::sim_seconds`. Ratios (cache hit rates, ...) are
    /// derived from counters at render time by callers, never merged.
    pub fn gauge_add(&mut self, name: &str, delta: f64) {
        *self.gauges.or_insert_with(name.to_string(), || 0.0) += delta;
    }

    /// Record a sample into the named histogram, creating it via
    /// `shape()` on first observation.
    pub fn histogram_observe<F: FnOnce() -> Histogram>(
        &mut self,
        name: &str,
        value: u64,
        shape: F,
    ) {
        self.histograms
            .or_insert_with(name.to_string(), shape)
            .observe(value);
    }

    /// Fold an externally-accumulated histogram into the named slot
    /// (creating it as a copy when absent). Shapes must match.
    pub fn histogram_merge(&mut self, name: &str, h: &Histogram) {
        match self.histograms.get_mut(name) {
            Some(mine) => mine.merge(h),
            None => {
                self.histograms.insert(name.to_string(), h.clone());
            }
        }
    }

    /// Current value of a counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of a gauge (0.0 when absent).
    pub fn gauge(&self, name: &str) -> f64 {
        self.gauges.get(name).copied().unwrap_or(0.0)
    }

    /// The named histogram, if any sample was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// True when nothing has been published.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Fold another registry into this one. Counters and gauges add;
    /// histograms of the same name must share a shape and add
    /// bucket-wise. Merging is commutative and associative, so fold
    /// order cannot leak into the aggregate.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, value) in other.counters.iter() {
            *self.counters.or_insert_with(name.clone(), || 0) += value;
        }
        for (name, value) in other.gauges.iter() {
            *self.gauges.or_insert_with(name.clone(), || 0.0) += value;
        }
        for (name, h) in other.histograms.iter() {
            match self.histograms.get_mut(name) {
                Some(mine) => mine.merge(h),
                None => {
                    self.histograms.insert(name.clone(), h.clone());
                }
            }
        }
    }

    /// Render the registry as a deterministic JSON object with sorted
    /// keys: `{"counters":{...},"gauges":{...},"histograms":{...}}`.
    pub fn render_json(&self) -> String {
        let counters: Vec<(&str, String)> = self
            .counters
            .iter()
            .map(|(k, v)| (k.as_str(), v.to_string()))
            .collect();
        let gauges: Vec<(&str, String)> = self
            .gauges
            .iter()
            .map(|(k, v)| (k.as_str(), json::number(*v)))
            .collect();
        let histograms: Vec<(&str, String)> = self
            .histograms
            .iter()
            .map(|(k, h)| (k.as_str(), h.render_json()))
            .collect();
        json::object(&[
            ("counters", json::object(&counters)),
            ("gauges", json::object(&gauges)),
            ("histograms", json::object(&histograms)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let mut m = MetricsRegistry::new();
        m.counter_add("a.x", 2);
        m.counter_add("a.x", 3);
        m.gauge_add("a.y", 1.5);
        m.gauge_add("a.y", 0.25);
        assert_eq!(m.counter("a.x"), 5);
        assert_eq!(m.gauge("a.y"), 1.75);
        assert_eq!(m.counter("missing"), 0);
        assert_eq!(m.gauge("missing"), 0.0);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(&[10, 100]);
        for v in [5, 10, 11, 1000] {
            h.observe(v);
        }
        assert_eq!(h.counts(), &[2, 1, 1]);
        assert_eq!(h.total(), 4);
        assert_eq!(h.sum(), 1026);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn histogram_rejects_unsorted_bounds() {
        Histogram::new(&[10, 10]);
    }

    #[test]
    fn merge_is_commutative() {
        let mk = |c: u64, g: f64, v: u64| {
            let mut m = MetricsRegistry::new();
            m.counter_add("c", c);
            m.gauge_add("g", g);
            m.histogram_observe("h", v, Histogram::byte_sizes);
            m
        };
        let (a, b) = (mk(1, 0.5, 100), mk(2, 1.5, 1 << 21));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.counter("c"), 3);
        assert_eq!(ab.gauge("g"), 2.0);
        assert_eq!(ab.histogram("h").unwrap().total(), 2);
    }

    #[test]
    fn render_is_sorted_and_stable() {
        let mut m = MetricsRegistry::new();
        m.counter_add("z.last", 1);
        m.counter_add("a.first", 2);
        m.gauge_add("mid", 0.5);
        let j = m.render_json();
        assert!(j.find("\"a.first\"").unwrap() < j.find("\"z.last\"").unwrap());
        assert_eq!(j, m.clone().render_json());
        assert_eq!(
            MetricsRegistry::new().render_json(),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}"
        );
    }
}
