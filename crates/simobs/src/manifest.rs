//! Per-run manifests.
//!
//! A [`RunManifest`] pins everything that identifies a run — experiment
//! id, fidelity, scheduler mode, base seed, and an FNV-1a digest of the
//! engine trial identities — next to the run's merged metric snapshot
//! and a linkage to the bench baselines that cover the same scenario.
//! `vgrid run <id> --metrics-json <path>` writes one; `verify.sh` and CI
//! byte-compare it against a committed golden.

use crate::json;
use crate::metrics::MetricsRegistry;

/// 64-bit FNV-1a over a byte string.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Digest of a run's configuration: FNV-1a over the newline-joined
/// trial identity strings (engine cache keys), which already encode
/// environment, kernel, machine, repetitions, seed, fidelity and
/// scheduler mode.
pub fn config_digest<S: AsRef<str>>(trial_keys: &[S]) -> u64 {
    let joined = trial_keys
        .iter()
        .map(|k| k.as_ref())
        .collect::<Vec<_>>()
        .join("\n");
    fnv1a64(joined.as_bytes())
}

/// Everything `vgrid run --metrics-json` writes about one run.
#[derive(Debug, Clone)]
pub struct RunManifest {
    /// Experiment id (`fig1`, `grid-churn`, ...).
    pub experiment: String,
    /// Fidelity the run used (`fast` / `paper`).
    pub fidelity: String,
    /// Scheduler execution mode (`coalesced` / `per-quantum-reference`).
    pub scheduler_mode: String,
    /// Base seed of the run's default seed stream.
    pub seed: u64,
    /// [`config_digest`] over the run's trial identities.
    pub config_digest: u64,
    /// Trial labels, in run order.
    pub trials: Vec<String>,
    /// Bench scenarios (from `BENCH_engine.json`) exercising the same
    /// simulation substrate, for cross-referencing regressions.
    pub bench_links: Vec<String>,
    /// Merged metric snapshot of every publication during the run.
    pub metrics: MetricsRegistry,
}

impl RunManifest {
    /// Render as deterministic JSON (sorted keys, trailing newline).
    pub fn render_json(&self) -> String {
        let trials: Vec<String> = self.trials.iter().map(|t| json::string(t)).collect();
        let links: Vec<String> = self.bench_links.iter().map(|l| json::string(l)).collect();
        let mut out = json::object(&[
            ("bench_links", json::array(&links)),
            (
                "config_digest",
                json::string(&format!("{:#018x}", self.config_digest)),
            ),
            ("experiment", json::string(&self.experiment)),
            ("fidelity", json::string(&self.fidelity)),
            ("metrics", self.metrics.render_json()),
            ("schema", json::string("vgrid-run-manifest/v1")),
            ("scheduler_mode", json::string(&self.scheduler_mode)),
            ("seed", json::string(&format!("{:#018x}", self.seed))),
            ("trials", json::array(&trials)),
        ]);
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn digest_depends_on_each_key() {
        let a = config_digest(&["k1", "k2"]);
        assert_eq!(a, config_digest(&["k1", "k2"]));
        assert_ne!(a, config_digest(&["k1", "k3"]));
        assert_ne!(a, config_digest(&["k2", "k1"]));
    }

    #[test]
    fn manifest_renders_stable_sorted_json() {
        let mut metrics = MetricsRegistry::new();
        metrics.counter_add("os.events_handled", 7);
        let m = RunManifest {
            experiment: "fig1".into(),
            fidelity: "fast".into(),
            scheduler_mode: "coalesced".into(),
            seed: 0xD0A1_57E5_7BED_5EED,
            config_digest: config_digest(&["trial-a", "trial-b"]),
            trials: vec!["trial-a".into(), "trial-b".into()],
            bench_links: vec!["fig1_substrate".into()],
            metrics,
        };
        let doc = m.render_json();
        assert_eq!(doc, m.render_json());
        assert!(doc.starts_with("{\"bench_links\":[\"fig1_substrate\"]"));
        assert!(doc.contains("\"schema\":\"vgrid-run-manifest/v1\""));
        assert!(doc.contains("\"seed\":\"0xd0a157e57bed5eed\""));
        assert!(doc.ends_with("}\n"));
        // Top-level keys appear in sorted order.
        let keys = [
            "\"bench_links\"",
            "\"config_digest\"",
            "\"experiment\"",
            "\"fidelity\"",
            "\"metrics\"",
            "\"schema\"",
            "\"scheduler_mode\"",
            "\"seed\"",
            "\"trials\"",
        ];
        let mut last = 0;
        for k in keys {
            let at = doc.find(k).unwrap_or_else(|| panic!("missing {k}"));
            assert!(at >= last, "{k} out of order");
            last = at;
        }
    }
}
