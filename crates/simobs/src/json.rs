//! Minimal deterministic JSON writing helpers.
//!
//! `vgrid-simobs` sits below `vgrid-core`, so it cannot reuse the figure
//! crate's JSON module; this is the same byte-stable formatting contract
//! (escaped strings, round-trip floats) restated for telemetry output.
//! There is deliberately no parser here — the artifacts this crate emits
//! are gated with `cmp`, not reparsed.

/// Escape and quote a string.
pub fn string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format a finite f64 so it round-trips exactly; non-finite values
/// become `null` (JSON has no Inf/NaN).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        let short = format!("{v}");
        if short.parse::<f64>() == Ok(v) {
            short
        } else {
            format!("{v:e}")
        }
    } else {
        "null".to_string()
    }
}

/// Render an object from already-rendered `(key, value)` pairs, in the
/// order given. Callers are responsible for sorted key order; every
/// call site in this crate iterates a `DetMap` or a fixed field list.
pub fn object(fields: &[(&str, String)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&string(k));
        out.push(':');
        out.push_str(v);
    }
    out.push('}');
    out
}

/// Render an array from already-rendered element strings.
pub fn array(items: &[String]) -> String {
    let mut out = String::from("[");
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(item);
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_escape() {
        assert_eq!(string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn numbers_round_trip() {
        for v in [0.0, 1.5, -3.25, 1e300, 0.1, 2.0 / 3.0] {
            assert_eq!(number(v).parse::<f64>().unwrap(), v);
        }
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
    }

    #[test]
    fn containers_render() {
        assert_eq!(
            object(&[("a", "1".into()), ("b", string("x"))]),
            "{\"a\":1,\"b\":\"x\"}"
        );
        assert_eq!(array(&["1".into(), "2".into()]), "[1,2]");
        assert_eq!(object(&[]), "{}");
        assert_eq!(array(&[]), "[]");
    }
}
