//! Paper-vs-measured calibration summary.
//!
//! Collects every row of every reproduced figure that has a
//! paper-reported value and renders the comparison table EXPERIMENTS.md
//! embeds. The reproduction targets *shape* (ordering, rough factors,
//! crossovers), not absolute 2006 numbers — see DESIGN.md §5.

use crate::figures::FigureResult;

/// One paper-vs-measured comparison.
#[derive(Debug, Clone)]
pub struct CalibrationEntry {
    /// Figure id.
    pub figure: String,
    /// Row label.
    pub label: String,
    /// Our measured value.
    pub measured: f64,
    /// The paper's reported value.
    pub paper: f64,
}

impl CalibrationEntry {
    /// Relative deviation from the paper value (0 = exact).
    pub fn relative_error(&self) -> f64 {
        if self.paper == 0.0 {
            self.measured.abs()
        } else {
            (self.measured - self.paper).abs() / self.paper.abs()
        }
    }
}

/// Extract all comparable rows from a set of figures.
pub fn collect(figures: &[FigureResult]) -> Vec<CalibrationEntry> {
    figures
        .iter()
        .flat_map(|f| {
            f.rows.iter().filter_map(|r| {
                r.paper.map(|paper| CalibrationEntry {
                    figure: f.id.clone(),
                    label: r.label.clone(),
                    measured: r.value,
                    paper,
                })
            })
        })
        .collect()
}

/// Render the comparison as a Markdown table.
pub fn render_markdown(entries: &[CalibrationEntry]) -> String {
    let mut out = String::from(
        "| figure | environment | paper | measured | rel. dev. |\n\
         |--------|-------------|-------|----------|-----------|\n",
    );
    for e in entries {
        out.push_str(&format!(
            "| {} | {} | {:.2} | {:.2} | {:.0}% |\n",
            e.figure,
            e.label,
            e.paper,
            e.measured,
            100.0 * e.relative_error()
        ));
    }
    out
}

/// Median relative error across all comparable rows — the single-number
/// health indicator of the calibration.
pub fn median_relative_error(entries: &[CalibrationEntry]) -> f64 {
    if entries.is_empty() {
        return 0.0;
    }
    let mut errs: Vec<f64> = entries.iter().map(|e| e.relative_error()).collect();
    errs.sort_by(f64::total_cmp);
    errs[errs.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::{FigureResult, FigureRow};

    fn figs() -> Vec<FigureResult> {
        let mut f1 = FigureResult::new("fig1", "t", "u");
        f1.push(FigureRow::new("a", 1.1).with_paper(1.0));
        f1.push(FigureRow::new("b", 2.0)); // no paper value -> excluded
        let mut f2 = FigureResult::new("fig2", "t", "u");
        f2.push(FigureRow::new("c", 3.0).with_paper(4.0));
        vec![f1, f2]
    }

    #[test]
    fn collect_filters_rows_with_paper_values() {
        let entries = collect(&figs());
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].label, "a");
        assert_eq!(entries[1].figure, "fig2");
    }

    #[test]
    fn relative_error_math() {
        let e = CalibrationEntry {
            figure: "f".into(),
            label: "l".into(),
            measured: 1.1,
            paper: 1.0,
        };
        assert!((e.relative_error() - 0.1).abs() < 1e-12);
        let zero_paper = CalibrationEntry {
            paper: 0.0,
            measured: 0.5,
            ..e
        };
        assert_eq!(zero_paper.relative_error(), 0.5);
    }

    #[test]
    fn markdown_has_all_rows() {
        let entries = collect(&figs());
        let md = render_markdown(&entries);
        assert_eq!(md.lines().count(), 2 + entries.len());
        assert!(md.contains("| fig1 | a |"));
    }

    #[test]
    fn median_error() {
        let entries = collect(&figs());
        // errors: 10% and 25%; median (upper) = 25%.
        let m = median_relative_error(&entries);
        assert!((m - 0.25).abs() < 1e-12);
        assert_eq!(median_relative_error(&[]), 0.0);
    }
}
