//! Figure/table result containers and rendering.
//!
//! Every experiment produces a [`FigureResult`]: labeled rows with the
//! measured value, the paper's reported value where the paper gives one,
//! and free-form notes. Results render as ASCII tables with bars (the
//! shape of the original figures) and serialize to JSON for
//! EXPERIMENTS.md regeneration.

use serde::{Deserialize, Serialize};

/// One bar/row of a figure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FigureRow {
    /// Row label (environment name).
    pub label: String,
    /// Measured value.
    pub value: f64,
    /// The paper's reported value for this row, if the paper states one.
    pub paper: Option<f64>,
    /// Extra detail for the table.
    pub detail: Option<String>,
}

impl FigureRow {
    /// Plain row.
    pub fn new(label: impl Into<String>, value: f64) -> Self {
        FigureRow {
            label: label.into(),
            value,
            paper: None,
            detail: None,
        }
    }

    /// Attach the paper's reported value.
    pub fn with_paper(mut self, paper: f64) -> Self {
        self.paper = Some(paper);
        self
    }

    /// Attach a detail string.
    pub fn with_detail(mut self, detail: impl Into<String>) -> Self {
        self.detail = Some(detail.into());
        self
    }
}

/// A reproduced figure or table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FigureResult {
    /// Experiment id ("fig1" ... "fig8", "tab-mem", "abl-*").
    pub id: String,
    /// Human title (matches the paper's caption).
    pub title: String,
    /// Unit of the value column.
    pub unit: String,
    /// The rows.
    pub rows: Vec<FigureRow>,
    /// Methodological notes.
    pub notes: Vec<String>,
}

impl FigureResult {
    /// New empty figure.
    pub fn new(id: impl Into<String>, title: impl Into<String>, unit: impl Into<String>) -> Self {
        FigureResult {
            id: id.into(),
            title: title.into(),
            unit: unit.into(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row.
    pub fn push(&mut self, row: FigureRow) {
        self.rows.push(row);
    }

    /// Append a note.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Value of the row with the given label.
    pub fn value_of(&self, label: &str) -> Option<f64> {
        self.rows.iter().find(|r| r.label == label).map(|r| r.value)
    }

    /// Render an ASCII table with proportional bars.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{} — {}\n", self.id, self.title));
        out.push_str(&format!("(unit: {})\n", self.unit));
        let max = self
            .rows
            .iter()
            .map(|r| r.value)
            .fold(0.0_f64, f64::max)
            .max(1e-12);
        let label_w = self
            .rows
            .iter()
            .map(|r| r.label.len())
            .max()
            .unwrap_or(8)
            .max(8);
        for row in &self.rows {
            let bar_len = ((row.value / max) * 40.0).round() as usize;
            let paper = row
                .paper
                .map(|p| format!(" (paper: {p:.2})"))
                .unwrap_or_default();
            let detail = row
                .detail
                .as_deref()
                .map(|d| format!("  [{d}]"))
                .unwrap_or_default();
            out.push_str(&format!(
                "  {:label_w$}  {:>10.3} {}{}{}\n",
                row.label,
                row.value,
                "#".repeat(bar_len),
                paper,
                detail,
            ));
        }
        for note in &self.notes {
            out.push_str(&format!("  note: {note}\n"));
        }
        out
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("figure serializes")
    }

    /// Deserialize from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FigureResult {
        let mut f = FigureResult::new("fig1", "Relative performance of 7z", "slowdown");
        f.push(FigureRow::new("native", 1.0).with_paper(1.0));
        f.push(FigureRow::new("VMwarePlayer", 1.16).with_paper(1.15));
        f.push(
            FigureRow::new("QEMU", 2.2)
                .with_paper(2.2)
                .with_detail("kqemu enabled"),
        );
        f.note("50 repetitions");
        f
    }

    #[test]
    fn render_contains_rows_and_notes() {
        let s = sample().render();
        assert!(s.contains("fig1"));
        assert!(s.contains("QEMU"));
        assert!(s.contains("paper: 2.20"));
        assert!(s.contains("kqemu"));
        assert!(s.contains("note: 50 repetitions"));
    }

    #[test]
    fn bars_scale_with_values() {
        let s = sample().render();
        let native_line = s.lines().find(|l| l.contains("native")).unwrap();
        let qemu_line = s.lines().find(|l| l.contains("QEMU")).unwrap();
        let hashes = |l: &str| l.chars().filter(|&c| c == '#').count();
        assert!(hashes(qemu_line) > hashes(native_line));
    }

    #[test]
    fn json_roundtrip() {
        let f = sample();
        let back = FigureResult::from_json(&f.to_json()).unwrap();
        assert_eq!(back.id, f.id);
        assert_eq!(back.rows.len(), f.rows.len());
        assert_eq!(back.rows[1].paper, Some(1.15));
    }

    #[test]
    fn value_of_finds_rows() {
        let f = sample();
        assert_eq!(f.value_of("native"), Some(1.0));
        assert_eq!(f.value_of("nope"), None);
    }
}
