//! Figure/table result containers and rendering.
//!
//! Every experiment produces a [`FigureResult`]: labeled rows with the
//! measured value, the paper's reported value where the paper gives one,
//! and free-form notes. Results render as ASCII tables with bars (the
//! shape of the original figures) and serialize to JSON for
//! EXPERIMENTS.md regeneration.

/// One bar/row of a figure.
#[derive(Debug, Clone)]
pub struct FigureRow {
    /// Row label (environment name).
    pub label: String,
    /// Measured value.
    pub value: f64,
    /// The paper's reported value for this row, if the paper states one.
    pub paper: Option<f64>,
    /// Extra detail for the table.
    pub detail: Option<String>,
}

impl FigureRow {
    /// Plain row.
    pub fn new(label: impl Into<String>, value: f64) -> Self {
        FigureRow {
            label: label.into(),
            value,
            paper: None,
            detail: None,
        }
    }

    /// Attach the paper's reported value.
    pub fn with_paper(mut self, paper: f64) -> Self {
        self.paper = Some(paper);
        self
    }

    /// Attach a detail string.
    pub fn with_detail(mut self, detail: impl Into<String>) -> Self {
        self.detail = Some(detail.into());
        self
    }
}

/// A reproduced figure or table.
#[derive(Debug, Clone)]
pub struct FigureResult {
    /// Experiment id ("fig1" ... "fig8", "tab-mem", "abl-*").
    pub id: String,
    /// Human title (matches the paper's caption).
    pub title: String,
    /// Unit of the value column.
    pub unit: String,
    /// The rows.
    pub rows: Vec<FigureRow>,
    /// Methodological notes.
    pub notes: Vec<String>,
}

impl FigureResult {
    /// New empty figure.
    pub fn new(id: impl Into<String>, title: impl Into<String>, unit: impl Into<String>) -> Self {
        FigureResult {
            id: id.into(),
            title: title.into(),
            unit: unit.into(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row.
    pub fn push(&mut self, row: FigureRow) {
        self.rows.push(row);
    }

    /// Append a note.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Value of the row with the given label.
    pub fn value_of(&self, label: &str) -> Option<f64> {
        self.rows.iter().find(|r| r.label == label).map(|r| r.value)
    }

    /// Render an ASCII table with proportional bars.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{} — {}\n", self.id, self.title));
        out.push_str(&format!("(unit: {})\n", self.unit));
        let max = self
            .rows
            .iter()
            .map(|r| r.value)
            .fold(0.0_f64, f64::max) // simlint: allow(float-fold-order) -- running max, order-insensitive
            .max(1e-12);
        let label_w = self
            .rows
            .iter()
            .map(|r| r.label.len())
            .max()
            .unwrap_or(8)
            .max(8);
        for row in &self.rows {
            let bar_len = ((row.value / max) * 40.0).round() as usize;
            let paper = row
                .paper
                .map(|p| format!(" (paper: {p:.2})"))
                .unwrap_or_default();
            let detail = row
                .detail
                .as_deref()
                .map(|d| format!("  [{d}]"))
                .unwrap_or_default();
            out.push_str(&format!(
                "  {:label_w$}  {:>10.3} {}{}{}\n",
                row.label,
                row.value,
                "#".repeat(bar_len),
                paper,
                detail,
            ));
        }
        for note in &self.notes {
            out.push_str(&format!("  note: {note}\n"));
        }
        out
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"id\": {},\n", json::string(&self.id)));
        out.push_str(&format!("  \"title\": {},\n", json::string(&self.title)));
        out.push_str(&format!("  \"unit\": {},\n", json::string(&self.unit)));
        out.push_str("  \"rows\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"label\": {},\n", json::string(&row.label)));
            out.push_str(&format!("      \"value\": {},\n", json::number(row.value)));
            match row.paper {
                Some(p) => out.push_str(&format!("      \"paper\": {},\n", json::number(p))),
                None => out.push_str("      \"paper\": null,\n"),
            }
            match &row.detail {
                Some(d) => out.push_str(&format!("      \"detail\": {}\n", json::string(d))),
                None => out.push_str("      \"detail\": null\n"),
            }
            out.push_str(if i + 1 < self.rows.len() {
                "    },\n"
            } else {
                "    }\n"
            });
        }
        out.push_str("  ],\n");
        out.push_str("  \"notes\": [\n");
        for (i, note) in self.notes.iter().enumerate() {
            out.push_str(&format!(
                "    {}{}\n",
                json::string(note),
                if i + 1 < self.notes.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}");
        out
    }

    /// Deserialize from JSON.
    pub fn from_json(s: &str) -> Result<Self, json::ParseError> {
        let value = json::parse(s)?;
        let obj = value.as_object()?;
        let mut fig = FigureResult::new(
            obj.get_str("id")?,
            obj.get_str("title")?,
            obj.get_str("unit")?,
        );
        for row in obj.get_array("rows")? {
            let r = row.as_object()?;
            fig.push(FigureRow {
                label: r.get_str("label")?.to_string(),
                value: r.get_number("value")?,
                paper: r.get_opt_number("paper")?,
                detail: r.get_opt_str("detail")?.map(str::to_string),
            });
        }
        for note in obj.get_array("notes")? {
            fig.note(note.as_str()?);
        }
        Ok(fig)
    }
}

/// Minimal JSON emit/parse support for [`FigureResult`] — enough for the
/// well-formed documents this crate itself produces, with no external
/// dependencies.
pub mod json {
    use std::collections::BTreeMap;
    use std::fmt;

    /// Error raised when a document cannot be parsed as a figure.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct ParseError(pub String);

    impl fmt::Display for ParseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "JSON parse error: {}", self.0)
        }
    }

    impl std::error::Error for ParseError {}

    fn err<T>(msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError(msg.into()))
    }

    /// Escape and quote a string.
    pub fn string(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
        out
    }

    /// Format a finite f64 so it round-trips exactly.
    pub fn number(v: f64) -> String {
        if v.is_finite() {
            let short = format!("{v}");
            if short.parse::<f64>() == Ok(v) {
                short
            } else {
                format!("{v:e}")
            }
        } else {
            // JSON has no Inf/NaN; null is the conventional stand-in.
            "null".to_string()
        }
    }

    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        Null,
        Bool(bool),
        Number(f64),
        String(String),
        Array(Vec<Value>),
        Object(BTreeMap<String, Value>),
    }

    /// Typed accessor wrapper over an object map.
    pub struct Object<'a>(&'a BTreeMap<String, Value>);

    impl Value {
        pub fn as_object(&self) -> Result<Object<'_>, ParseError> {
            match self {
                Value::Object(m) => Ok(Object(m)),
                other => err(format!("expected object, found {other:?}")),
            }
        }

        pub fn as_str(&self) -> Result<&str, ParseError> {
            match self {
                Value::String(s) => Ok(s),
                other => err(format!("expected string, found {other:?}")),
            }
        }
    }

    impl Object<'_> {
        fn get(&self, key: &str) -> Result<&Value, ParseError> {
            match self.0.get(key) {
                Some(v) => Ok(v),
                None => err(format!("missing key {key:?}")),
            }
        }

        pub fn get_str(&self, key: &str) -> Result<&str, ParseError> {
            self.get(key)?.as_str()
        }

        pub fn get_opt_str(&self, key: &str) -> Result<Option<&str>, ParseError> {
            match self.0.get(key) {
                None | Some(Value::Null) => Ok(None),
                Some(v) => v.as_str().map(Some),
            }
        }

        pub fn get_number(&self, key: &str) -> Result<f64, ParseError> {
            match self.get(key)? {
                Value::Number(n) => Ok(*n),
                other => err(format!("expected number at {key:?}, found {other:?}")),
            }
        }

        pub fn get_opt_number(&self, key: &str) -> Result<Option<f64>, ParseError> {
            match self.0.get(key) {
                None | Some(Value::Null) => Ok(None),
                Some(Value::Number(n)) => Ok(Some(*n)),
                Some(other) => err(format!("expected number at {key:?}, found {other:?}")),
            }
        }

        pub fn get_array(&self, key: &str) -> Result<&[Value], ParseError> {
            match self.get(key)? {
                Value::Array(items) => Ok(items),
                other => err(format!("expected array at {key:?}, found {other:?}")),
            }
        }
    }

    /// Parse a JSON document.
    pub fn parse(s: &str) -> Result<Value, ParseError> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return err("trailing characters after document");
        }
        Ok(v)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }

        fn peek(&mut self) -> Result<u8, ParseError> {
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(&b) => Ok(b),
                None => err("unexpected end of input"),
            }
        }

        fn expect(&mut self, b: u8) -> Result<(), ParseError> {
            if self.peek()? == b {
                self.pos += 1;
                Ok(())
            } else {
                err(format!("expected {:?} at byte {}", b as char, self.pos))
            }
        }

        fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
            if self.bytes[self.pos..].starts_with(word.as_bytes()) {
                self.pos += word.len();
                Ok(v)
            } else {
                err(format!("invalid literal at byte {}", self.pos))
            }
        }

        fn value(&mut self) -> Result<Value, ParseError> {
            match self.peek()? {
                b'{' => self.object(),
                b'[' => self.array(),
                b'"' => Ok(Value::String(self.string()?)),
                b't' => self.literal("true", Value::Bool(true)),
                b'f' => self.literal("false", Value::Bool(false)),
                b'n' => self.literal("null", Value::Null),
                _ => self.number_value(),
            }
        }

        fn object(&mut self) -> Result<Value, ParseError> {
            self.expect(b'{')?;
            let mut map = BTreeMap::new();
            if self.peek()? == b'}' {
                self.pos += 1;
                return Ok(Value::Object(map));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.expect(b':')?;
                let val = self.value()?;
                map.insert(key, val);
                match self.peek()? {
                    b',' => self.pos += 1,
                    b'}' => {
                        self.pos += 1;
                        return Ok(Value::Object(map));
                    }
                    _ => return err(format!("expected ',' or '}}' at byte {}", self.pos)),
                }
            }
        }

        fn array(&mut self) -> Result<Value, ParseError> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            if self.peek()? == b']' {
                self.pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(self.value()?);
                match self.peek()? {
                    b',' => self.pos += 1,
                    b']' => {
                        self.pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return err(format!("expected ',' or ']' at byte {}", self.pos)),
                }
            }
        }

        fn string(&mut self) -> Result<String, ParseError> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                match self.bytes.get(self.pos) {
                    None => return err("unterminated string"),
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        let esc = self
                            .bytes
                            .get(self.pos)
                            .copied()
                            .ok_or_else(|| ParseError("unterminated escape".into()))?;
                        self.pos += 1;
                        match esc {
                            b'"' => out.push('"'),
                            b'\\' => out.push('\\'),
                            b'/' => out.push('/'),
                            b'n' => out.push('\n'),
                            b'r' => out.push('\r'),
                            b't' => out.push('\t'),
                            b'b' => out.push('\u{0008}'),
                            b'f' => out.push('\u{000c}'),
                            b'u' => {
                                let hex = self
                                    .bytes
                                    .get(self.pos..self.pos + 4)
                                    .ok_or_else(|| ParseError("truncated \\u escape".into()))?;
                                self.pos += 4;
                                let code = u32::from_str_radix(
                                    std::str::from_utf8(hex)
                                        .map_err(|_| ParseError("bad \\u escape".into()))?,
                                    16,
                                )
                                .map_err(|_| ParseError("bad \\u escape".into()))?;
                                out.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| ParseError("bad \\u code point".into()))?,
                                );
                            }
                            _ => return err("unknown escape"),
                        }
                    }
                    Some(_) => {
                        // Consume one UTF-8 character.
                        let rest = std::str::from_utf8(&self.bytes[self.pos..])
                            .map_err(|_| ParseError("invalid UTF-8".into()))?;
                        let c = rest.chars().next().unwrap();
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }

        fn number_value(&mut self) -> Result<Value, ParseError> {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                    self.pos += 1;
                } else {
                    break;
                }
            }
            let text = std::str::from_utf8(&self.bytes[start..self.pos])
                .map_err(|_| ParseError("invalid number".into()))?;
            match text.parse::<f64>() {
                Ok(n) => Ok(Value::Number(n)),
                Err(_) => err(format!("invalid number {text:?}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FigureResult {
        let mut f = FigureResult::new("fig1", "Relative performance of 7z", "slowdown");
        f.push(FigureRow::new("native", 1.0).with_paper(1.0));
        f.push(FigureRow::new("VMwarePlayer", 1.16).with_paper(1.15));
        f.push(
            FigureRow::new("QEMU", 2.2)
                .with_paper(2.2)
                .with_detail("kqemu enabled"),
        );
        f.note("50 repetitions");
        f
    }

    #[test]
    fn render_contains_rows_and_notes() {
        let s = sample().render();
        assert!(s.contains("fig1"));
        assert!(s.contains("QEMU"));
        assert!(s.contains("paper: 2.20"));
        assert!(s.contains("kqemu"));
        assert!(s.contains("note: 50 repetitions"));
    }

    #[test]
    fn bars_scale_with_values() {
        let s = sample().render();
        let native_line = s.lines().find(|l| l.contains("native")).unwrap();
        let qemu_line = s.lines().find(|l| l.contains("QEMU")).unwrap();
        let hashes = |l: &str| l.chars().filter(|&c| c == '#').count();
        assert!(hashes(qemu_line) > hashes(native_line));
    }

    #[test]
    fn json_roundtrip() {
        let f = sample();
        let back = FigureResult::from_json(&f.to_json()).unwrap();
        assert_eq!(back.id, f.id);
        assert_eq!(back.rows.len(), f.rows.len());
        assert_eq!(back.rows[1].paper, Some(1.15));
    }

    #[test]
    fn value_of_finds_rows() {
        let f = sample();
        assert_eq!(f.value_of("native"), Some(1.0));
        assert_eq!(f.value_of("nope"), None);
    }
}
