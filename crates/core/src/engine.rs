//! The unified experiment engine.
//!
//! Every experiment in this crate is a set of *trials*. A trial is a
//! declarative [`TrialSpec`]: a workload kernel ([`KernelSpec`]) placed
//! in an execution environment ([`Environment`]), with a repetition
//! count and a base seed. The [`Engine`] materializes specs into
//! [`TrialResult`]s:
//!
//! * every repetition of every trial is an independent deterministic
//!   simulation, so the engine fans the whole `(trial x repetition)`
//!   job list out over [`parallel_map`]; results land in index-addressed
//!   slots and the Welford fold always runs in repetition order, making
//!   the statistics bit-identical to the sequential path
//!   ([`Engine::run_trials_seq`]) regardless of thread scheduling;
//! * completed trials are cached by their spec (label excluded), so the
//!   shared native baselines — the no-VM NBench run behind figures 5/6,
//!   the 7z host runs behind figures 7/8 and `abl-bt` — are simulated
//!   once per process instead of once per figure;
//! * simulations wait for completion through the event-driven
//!   `System::run_until_event` / `VmHandle::run_until_halted`, never by
//!   polling the clock forward in fixed steps.
//!
//! Figure modules translate specs and results into `FigureResult`s; the
//! physics lives in the layers below.

use std::fmt;
use std::sync::{Mutex, OnceLock};

use crate::parallel::parallel_map;
use crate::testbed::{install_einstein_vm, Fidelity, KernelLoop};
use vgrid_grid::{CampaignSpec, ChurnConfig, DeployConfig, PoolConfig, ProjectConfig, RunOptions};
use vgrid_machine::ops::OpBlock;
use vgrid_machine::MachineSpec;
use vgrid_os::{Action, Priority, System, SystemConfig, ThreadBody, ThreadCtx};
use vgrid_simcore::{
    DetMap, EventLoopStats, OnlineStats, RepetitionRunner, SimDuration, SimTime, Summary, TraceSink,
};
use vgrid_simobs::fnv1a64;
use vgrid_vmm::{GuestConfig, GuestVm, Vm, VmConfig, VmHandle, VmmProfile, VnicMode};
use vgrid_workloads::iobench::{IoBenchBody, IoBenchConfig};
use vgrid_workloads::nbench::{IndexGroup, NBenchBody, NBenchSuite};
use vgrid_workloads::netbench::{NetBenchBody, NetBenchConfig};
use vgrid_workloads::sevenz::{SevenZBody, SevenZConfig};

/// Where a trial's workload executes.
#[derive(Debug, Clone)]
pub enum Environment {
    /// Directly on the host OS, no VM anywhere.
    Native,
    /// Inside a guest of the given monitor (the workload is the guest's
    /// only program; the host is otherwise idle).
    Guest {
        /// Monitor profile.
        profile: VmmProfile,
        /// Virtual-NIC mode for network kernels; `None` keeps the
        /// profile's default.
        vnic: Option<VnicMode>,
    },
    /// On the host OS while a VM of the given monitor computes an
    /// Einstein@home task at 100 % virtual CPU (the paper's
    /// intrusiveness setup, Section 4.2.2).
    HostUnderVm {
        /// Monitor profile of the background VM.
        profile: VmmProfile,
        /// Host priority class of the VM process.
        priority: Priority,
    },
}

/// What a trial runs and measures. Each kernel defines its metric list
/// ([`KernelSpec::metric_names`]); [`run_one`] returns one value per
/// metric per repetition.
// Specs are built by the handful per experiment and never stored in
// bulk, so the Campaign variant's size does not matter.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum KernelSpec {
    /// `block` executed `iters` times; metric `wall_secs` is the
    /// host-side (external time reference) wall span of the loop.
    OpLoop {
        /// CPU work per iteration.
        block: OpBlock,
        /// Iteration count.
        iters: u64,
    },
    /// The paper's disk benchmark; metric `score_bps`.
    IoBench(IoBenchConfig),
    /// The paper's network benchmark; metric `mbps`.
    NetBench(NetBenchConfig),
    /// NBench on the host; metrics `mem_index`, `int_index`, `fp_index`
    /// (absolute geometric-mean group rates, so overheads computed from
    /// two trials equal the per-test ratio geomean).
    NBench {
        /// Test suite to run.
        suite: NBenchSuite,
        /// Measured window per test.
        per_test: SimDuration,
    },
    /// Host-side 7z benchmark; metrics `cpu_pct`, `mips`.
    SevenZHost(SevenZConfig),
    /// Committed memory of a powered-on (idle) guest; metric
    /// `committed_mb`.
    Footprint,
    /// Guest clock drift while both host cores are saturated with
    /// normal-priority hogs; metrics `lag_secs`, `loss_events`.
    ClockLag {
        /// Wall time to run before reading the guest clock.
        wall: SimTime,
    },
    /// A volunteer-grid campaign (`vgrid-grid`); the deployment carries
    /// its own VM configuration, so [`Environment`] is ignored. Metrics
    /// `validated_wus`, `efficiency`, `hosts_excluded_ram`,
    /// `image_transfer_secs`, `migrations`, plus the churn-robustness
    /// set `goodput`, `wasted_cpu_secs`, `reissues`,
    /// `makespan_inflation`, `owner_preemptions`, `vm_kills`, and the
    /// migration-policy set `evacuations`, `rescue_wins`,
    /// `transfer_secs` (all zero when the policy is off).
    Campaign {
        /// Project parameters.
        project: ProjectConfig,
        /// Volunteer-pool parameters.
        pool: PoolConfig,
        /// Deployment mode (native or a specific monitor).
        deploy: DeployConfig,
        /// Churn / fault-injection layers (`ChurnConfig::off()` for the
        /// legacy availability-only model).
        churn: ChurnConfig,
        /// Simulated campaign horizon.
        horizon: SimTime,
    },
}

impl KernelSpec {
    /// Names of the metrics [`run_one`] produces for this kernel, in
    /// order.
    pub fn metric_names(&self) -> &'static [&'static str] {
        match self {
            KernelSpec::OpLoop { .. } => &["wall_secs"],
            KernelSpec::IoBench(_) => &["score_bps"],
            KernelSpec::NetBench(_) => &["mbps"],
            KernelSpec::NBench { .. } => &["mem_index", "int_index", "fp_index"],
            KernelSpec::SevenZHost(_) => &["cpu_pct", "mips"],
            KernelSpec::Footprint => &["committed_mb"],
            KernelSpec::ClockLag { .. } => &["lag_secs", "loss_events"],
            KernelSpec::Campaign { .. } => &[
                "validated_wus",
                "efficiency",
                "hosts_excluded_ram",
                "image_transfer_secs",
                "migrations",
                "goodput",
                "wasted_cpu_secs",
                "reissues",
                "makespan_inflation",
                "owner_preemptions",
                "vm_kills",
                "evacuations",
                "rescue_wins",
                "transfer_secs",
            ],
        }
    }
}

/// Base seed used when a spec does not set one; equals
/// `RepetitionRunner`'s default so engine trials reproduce the legacy
/// repetition sweeps bit for bit. Public because run manifests
/// (`crate::obs`) record it as the run's seed stream anchor.
pub const DEFAULT_BASE_SEED: u64 = 0xD0A1_57E5_7BED_5EED;

/// A declarative experiment trial: kernel + environment + repetitions.
#[derive(Debug, Clone)]
pub struct TrialSpec {
    /// Row label in the figure (not part of the trial's identity).
    pub label: String,
    /// Execution environment.
    pub env: Environment,
    /// Workload kernel.
    pub kernel: KernelSpec,
    /// Host machine override; `None` uses the paper's testbed.
    pub machine: Option<MachineSpec>,
    /// Number of repetitions (>= 1).
    pub repetitions: u32,
    /// Base seed for the repetition seed stream.
    pub base_seed: u64,
    /// Fidelity (scales the background Einstein workload).
    pub fidelity: Fidelity,
}

impl TrialSpec {
    /// A single-repetition trial on the paper testbed.
    pub fn new(
        label: impl Into<String>,
        env: Environment,
        kernel: KernelSpec,
        fidelity: Fidelity,
    ) -> Self {
        TrialSpec {
            label: label.into(),
            env,
            kernel,
            machine: None,
            repetitions: 1,
            base_seed: DEFAULT_BASE_SEED,
            fidelity,
        }
    }

    /// Set the base seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Set the repetition count.
    pub fn repetitions(mut self, n: u32) -> Self {
        self.repetitions = n.max(1);
        self
    }

    /// Override the host machine.
    pub fn on_machine(mut self, machine: MachineSpec) -> Self {
        self.machine = Some(machine);
        self
    }

    /// Seed of repetition `rep`. Single-shot trials use the base seed
    /// verbatim (they pin one specific simulation, like the legacy
    /// figure seeds); repeated trials derive independent per-repetition
    /// streams from it.
    pub fn seed_for(&self, rep: u32) -> u64 {
        if self.repetitions <= 1 {
            self.base_seed
        } else {
            RepetitionRunner::new()
                .repetitions(self.repetitions)
                .base_seed(self.base_seed)
                .seed_for(rep)
        }
    }

    /// Cache identity: everything but the display label. The scheduler
    /// execution mode is part of the identity — a result computed under
    /// the per-quantum reference must not be served to a fast-path run
    /// of the same spec (they are bit-identical by contract, but the
    /// equivalence suite is exactly the place that must not assume so).
    ///
    /// The grid *host substrate* (`--hydrated-reference`, see
    /// `vgrid_grid::SubstrateMode`) is deliberately NOT part of the
    /// identity. Unlike the per-quantum scheduler reference — which
    /// genuinely changes context-switch placement and is only
    /// contractually equivalent — the two grid substrates share every
    /// line of host-stepping code, so cross-substrate cache sharing is
    /// sound, and it is what keeps run-manifest `config_digest`s
    /// identical across modes (asserted by the `hydration_reference`
    /// suite, which compares substrates in separate processes where the
    /// cache cannot mask a divergence).
    ///
    /// The horizon of a `Campaign` kernel *is* part of the identity
    /// (different horizons are different results), but a horizon-only
    /// miss still fast-forwards: the grid layer's trajectory cache
    /// (`vgrid_grid::fastforward`) resumes the campaign from the
    /// longest stored prefix snapshot of the same configuration.
    fn cache_key(&self, options: &RunOptions) -> TrialKey {
        let digest = |s: String| fnv1a64(s.as_bytes());
        TrialKey {
            env: digest(format!("{:?}", self.env)),
            kernel: digest(format!("{:?}", self.kernel)),
            machine: digest(format!("{:?}", self.machine)),
            repetitions: self.repetitions,
            base_seed: self.base_seed,
            fidelity: digest(format!("{:?}", self.fidelity)),
            per_quantum_ref: options.per_quantum_reference(),
        }
    }

    /// The pre-TrialKey concatenated-string identity, kept only so the
    /// tests can pin that the structured key partitions specs exactly
    /// like the string it replaced.
    #[cfg(test)]
    fn legacy_cache_key(&self, options: &RunOptions) -> String {
        format!(
            "{:?}|{:?}|{:?}|{}|{:#x}|{:?}|ref={}",
            self.env,
            self.kernel,
            self.machine,
            self.repetitions,
            self.base_seed,
            self.fidelity,
            options.per_quantum_reference(),
        )
    }
}

/// Label-agnostic structured trial identity. Each unbounded axis (the
/// environment, kernel, and machine `Debug` renderings) is folded to
/// its own FNV-1a digest, so the key is a fixed-size, cheaply ordered
/// value instead of a multi-kilobyte concatenated string; the scalar
/// axes (repetitions, seed, scheduler reference mode) stay verbatim.
/// Per-axis digests also make an accidental cross-axis collision — one
/// spec's kernel text bleeding into another's machine text, possible
/// with delimiter-joined strings — structurally impossible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TrialKey {
    env: u64,
    kernel: u64,
    machine: u64,
    repetitions: u32,
    base_seed: u64,
    fidelity: u64,
    per_quantum_ref: bool,
}

impl fmt::Display for TrialKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "env:{:016x}|krn:{:016x}|mac:{:016x}|reps:{}|seed:{:#x}|fid:{:016x}|ref:{}",
            self.env,
            self.kernel,
            self.machine,
            self.repetitions,
            self.base_seed,
            self.fidelity,
            self.per_quantum_ref,
        )
    }
}

/// Event-loop counters accumulated across every `System`-backed trial
/// this process has run (grid `Campaign` trials run on the desktop-grid
/// simulator, not `vgrid_os::System`, and are not counted).
static LOOP_TOTALS: Mutex<Option<EventLoopStats>> = Mutex::new(None);

/// Snapshot of the process-wide event-loop totals; zeroes before any
/// trial has completed.
pub fn loop_totals() -> EventLoopStats {
    LOOP_TOTALS
        .lock()
        .expect("core::engine::LOOP_TOTALS poisoned")
        .unwrap_or_default()
}

fn record_loop_stats(sys: &System) {
    let mut totals = LOOP_TOTALS
        .lock()
        .expect("core::engine::LOOP_TOTALS poisoned");
    totals
        .get_or_insert_with(EventLoopStats::default)
        .merge(&sys.loop_stats());
}

/// Per-metric summaries of one completed trial.
#[derive(Debug, Clone)]
pub struct TrialResult {
    /// Label copied from the requesting spec.
    pub label: String,
    /// `(metric name, summary)` in [`KernelSpec::metric_names`] order.
    pub metrics: Vec<(&'static str, Summary)>,
}

impl TrialResult {
    /// Summary of the named metric; panics on an unknown name.
    pub fn metric(&self, name: &str) -> &Summary {
        self.metrics
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, s)| s)
            .unwrap_or_else(|| panic!("trial {:?} has no metric {name:?}", self.label))
    }

    /// Summary of the kernel's primary (first) metric.
    pub fn summary(&self) -> &Summary {
        &self.metrics[0].1
    }

    /// Mean of the primary metric.
    pub fn value(&self) -> f64 {
        self.summary().mean
    }
}

/// Materializes [`TrialSpec`]s into [`TrialResult`]s; see the module
/// docs for the parallelism, caching and determinism contract.
#[derive(Debug, Default)]
pub struct Engine {
    cache: Mutex<DetMap<TrialKey, TrialResult>>,
}

impl Engine {
    /// An engine with an empty cache.
    pub fn new() -> Self {
        Engine::default()
    }

    /// The process-wide engine used by the `run(fidelity)` entry points;
    /// its cache is what lets multi-figure experiments share baselines.
    pub fn global() -> &'static Engine {
        static GLOBAL: OnceLock<Engine> = OnceLock::new();
        GLOBAL.get_or_init(Engine::new)
    }

    /// Run every spec, fanning all repetitions of all uncached trials
    /// out over the scoped thread pool. Execution options come from the
    /// deprecated process globals ([`RunOptions::from_globals`]); new
    /// callers should prefer [`Engine::run_trials_with`].
    pub fn run_trials(&self, specs: &[TrialSpec]) -> Vec<TrialResult> {
        self.run_impl(specs, true, &RunOptions::from_globals())
    }

    /// Sequential twin of [`Engine::run_trials`]: same seeds, same fold
    /// order, one thread. Exists so tests can pin the parallel path to
    /// bit-identical statistics.
    pub fn run_trials_seq(&self, specs: &[TrialSpec]) -> Vec<TrialResult> {
        self.run_impl(specs, false, &RunOptions::from_globals())
    }

    /// [`Engine::run_trials`] with explicit execution options instead of
    /// the ambient process globals, so concurrent callers (the serve
    /// worker pool) can run different modes side by side.
    pub fn run_trials_with(&self, specs: &[TrialSpec], options: &RunOptions) -> Vec<TrialResult> {
        self.run_impl(specs, true, options)
    }

    /// Sequential twin of [`Engine::run_trials_with`].
    pub fn run_trials_seq_with(
        &self,
        specs: &[TrialSpec],
        options: &RunOptions,
    ) -> Vec<TrialResult> {
        self.run_impl(specs, false, options)
    }

    /// Convenience for a single spec.
    pub fn run_trial(&self, spec: &TrialSpec) -> TrialResult {
        self.run_trials(std::slice::from_ref(spec))
            .pop()
            .expect("one spec yields one result")
    }

    fn run_impl(
        &self,
        specs: &[TrialSpec],
        parallel: bool,
        options: &RunOptions,
    ) -> Vec<TrialResult> {
        // Observed runs publish per-repetition telemetry as jobs
        // complete; run them sequentially so publication order is the
        // deterministic job order rather than thread-scheduling order.
        let parallel = parallel && !crate::obs::capturing();
        let mut out: Vec<Option<TrialResult>> = Vec::with_capacity(specs.len());
        let mut todo: Vec<usize> = Vec::new();
        {
            let cache = self.cache.lock().expect("engine trial cache poisoned");
            for (i, spec) in specs.iter().enumerate() {
                let key = spec.cache_key(options);
                let hit = cache.get(&key);
                crate::obs::note_trial(&spec.label, &key.to_string(), hit.is_some());
                match hit {
                    Some(hit) => out.push(Some(TrialResult {
                        label: spec.label.clone(),
                        metrics: hit.metrics.clone(),
                    })),
                    None => {
                        out.push(None);
                        todo.push(i);
                    }
                }
            }
        }

        // One job per (trial, repetition); jobs of one trial are
        // contiguous and in repetition order.
        let jobs: Vec<(usize, u32)> = todo
            .iter()
            .flat_map(|&i| (0..specs[i].repetitions.max(1)).map(move |rep| (i, rep)))
            .collect();
        let observations: Vec<Vec<f64>> = if parallel {
            parallel_map(jobs.len(), |j| {
                let (i, rep) = jobs[j];
                run_one(&specs[i], specs[i].seed_for(rep), options)
            })
        } else {
            jobs.iter()
                .map(|&(i, rep)| run_one(&specs[i], specs[i].seed_for(rep), options))
                .collect()
        };

        let mut cursor = 0;
        for &i in &todo {
            let spec = &specs[i];
            let names = spec.kernel.metric_names();
            let mut stats: Vec<OnlineStats> = names.iter().map(|_| OnlineStats::new()).collect();
            for _ in 0..spec.repetitions.max(1) {
                let values = &observations[cursor];
                cursor += 1;
                assert_eq!(values.len(), names.len(), "kernel metric arity");
                for (s, v) in stats.iter_mut().zip(values) {
                    s.push(*v);
                }
            }
            let result = TrialResult {
                label: spec.label.clone(),
                metrics: names
                    .iter()
                    .zip(&stats)
                    .map(|(n, s)| (*n, s.summary()))
                    .collect(),
            };
            self.cache
                .lock()
                .expect("engine trial cache poisoned")
                .insert(spec.cache_key(options), result.clone());
            out[i] = Some(result);
        }
        out.into_iter()
            .map(|r| r.expect("every spec resolved"))
            .collect()
    }
}

/// Infinite normal-priority CPU hog (used by [`KernelSpec::ClockLag`] to
/// starve an idle-priority vCPU).
#[derive(Debug)]
struct Hog;

impl ThreadBody for Hog {
    fn next(&mut self, _ctx: &mut ThreadCtx<'_>) -> Action {
        Action::compute(OpBlock::int_alu(10_000_000))
    }
}

fn system_for(spec: &TrialSpec, seed: u64, options: &RunOptions) -> System {
    // `testbed` snapshots the deprecated scheduler global; the options
    // value is authoritative here so concurrent runs can differ.
    let base = SystemConfig {
        coalesce: !options.per_quantum_reference(),
        ..SystemConfig::testbed(seed)
    };
    let mut sys = match &spec.machine {
        Some(machine) => System::new(SystemConfig {
            machine: machine.clone(),
            ..base
        }),
        None => System::new(base),
    };
    // Observed runs record the full event stream; emission stays a
    // single `is_enabled` branch everywhere else, so bench event
    // counts with telemetry off are untouched.
    if crate::obs::capturing() {
        sys.trace = TraceSink::new(crate::obs::OBS_TRACE_CAPACITY);
        sys.trace.enable_all();
    }
    sys
}

fn guest_config(profile: &VmmProfile, vnic: Option<VnicMode>) -> GuestConfig {
    let cfg = GuestConfig::new(profile.clone());
    match vnic {
        Some(mode) => cfg.with_vnic(mode),
        None => cfg,
    }
}

fn install_background_vm(
    sys: &mut System,
    env: &Environment,
    fidelity: Fidelity,
) -> Option<VmHandle> {
    match env {
        Environment::Native => None,
        Environment::HostUnderVm { profile, priority } => {
            let vm = install_einstein_vm(sys, profile, *priority, fidelity);
            // Let the VM reach steady state before benchmarking.
            sys.run_until(SimTime::from_millis(200));
            Some(vm)
        }
        Environment::Guest { .. } => panic!("host-side kernel cannot run inside a guest"),
    }
}

/// Execute one repetition of `spec` with the given seed; returns one
/// value per metric, in [`KernelSpec::metric_names`] order. Pure
/// function of `(spec, seed, options)` — this is what makes engine
/// runs deterministic and cacheable.
fn run_one(spec: &TrialSpec, seed: u64, options: &RunOptions) -> Vec<f64> {
    let fidelity = spec.fidelity;
    match &spec.kernel {
        KernelSpec::Campaign {
            project,
            pool,
            deploy,
            churn,
            horizon,
        } => {
            // Repetitions are the engine's job: one rep, seed verbatim.
            let result = CampaignSpec::new(&spec.label)
                .project(project.clone())
                .pool(pool.clone())
                .deploy(deploy.clone())
                .churn(churn.clone())
                .seed(seed)
                .horizon(*horizon)
                .build()
                .unwrap_or_else(|e| panic!("trial {:?}: {e}", spec.label))
                .run_seq_with(options);
            let r = &result.reports()[0];
            crate::obs::observe_campaign_run(&spec.label, seed, r);
            vec![
                r.validated_wus as f64,
                r.efficiency,
                r.hosts_excluded_ram as f64,
                r.image_transfer_secs,
                r.migrations as f64,
                r.goodput,
                r.wasted_cpu_secs,
                r.reissues as f64,
                r.makespan_inflation,
                r.owner_preemptions as f64,
                r.vm_kills as f64,
                r.evacuations as f64,
                r.rescue_wins as f64,
                r.transfer_secs,
            ]
        }
        KernelSpec::OpLoop { block, iters } => {
            let mut sys = system_for(spec, seed, options);
            let (body, span) = KernelLoop::new(block.clone(), *iters);
            let vm = match &spec.env {
                Environment::Native => {
                    sys.spawn("bench", Priority::Normal, Box::new(body));
                    assert!(
                        sys.run_to_completion(SimTime::from_secs(3600)),
                        "native loop did not finish"
                    );
                    None
                }
                Environment::Guest { profile, vnic } => {
                    let mut guest = GuestVm::new(guest_config(profile, *vnic), sys.machine());
                    guest.spawn("bench", Box::new(body));
                    let vm = Vm::install(
                        &mut sys,
                        VmConfig::new(format!("vm-{}", profile.name), Priority::Normal),
                        guest,
                    );
                    assert!(
                        vm.run_until_halted(&mut sys, SimTime::from_secs(3600)),
                        "guest loop did not finish"
                    );
                    Some(vm)
                }
                Environment::HostUnderVm { .. } => {
                    let vm = install_background_vm(&mut sys, &spec.env, fidelity);
                    sys.spawn("bench", Priority::Normal, Box::new(body));
                    let done = span.clone();
                    assert!(
                        sys.run_until_event(SimTime::from_secs(3600), || done.borrow().is_some()),
                        "host loop did not finish"
                    );
                    vm
                }
            };
            record_loop_stats(&sys);
            crate::obs::observe_system_run(&spec.label, seed, &sys, vm.as_ref());
            let (t0, t1) = span.borrow().expect("loop finished");
            vec![t1.since(t0).as_secs_f64()]
        }
        KernelSpec::IoBench(cfg) => {
            let mut sys = system_for(spec, seed, options);
            let (body, report) = IoBenchBody::new(cfg.clone());
            let vm = run_bench_in_env(&mut sys, &spec.env, "iobench", Box::new(body));
            record_loop_stats(&sys);
            crate::obs::observe_system_run(&spec.label, seed, &sys, vm.as_ref());
            let r = report.borrow();
            assert!(r.complete, "iobench did not finish");
            vec![r.score_bps()]
        }
        KernelSpec::NetBench(cfg) => {
            let mut sys = system_for(spec, seed, options);
            let (body, report) = NetBenchBody::new(cfg.clone());
            let vm = run_bench_in_env(&mut sys, &spec.env, "netbench", Box::new(body));
            record_loop_stats(&sys);
            crate::obs::observe_system_run(&spec.label, seed, &sys, vm.as_ref());
            let r = report.borrow();
            assert!(r.complete, "netbench did not finish");
            vec![r.mbps]
        }
        KernelSpec::NBench { suite, per_test } => {
            let mut sys = system_for(spec, seed, options);
            let vm = install_background_vm(&mut sys, &spec.env, fidelity);
            let (body, report) = NBenchBody::new(suite.clone(), *per_test);
            sys.spawn("nbench", Priority::Normal, Box::new(body));
            let done = report.clone();
            assert!(
                sys.run_until_event(SimTime::from_secs(3600), || done.borrow().complete),
                "nbench did not finish"
            );
            record_loop_stats(&sys);
            crate::obs::observe_system_run(&spec.label, seed, &sys, vm.as_ref());
            let r = report.borrow();
            vec![
                r.group_rate(IndexGroup::Memory),
                r.group_rate(IndexGroup::Integer),
                r.group_rate(IndexGroup::Float),
            ]
        }
        KernelSpec::SevenZHost(cfg) => {
            let mut sys = system_for(spec, seed, options);
            let vm = install_background_vm(&mut sys, &spec.env, fidelity);
            let (body, report) = SevenZBody::new(cfg.clone(), Priority::Normal);
            sys.spawn("7z", Priority::Normal, Box::new(body));
            let done = report.clone();
            assert!(
                sys.run_until_event(SimTime::from_secs(3600), || done.borrow().complete),
                "7z did not finish"
            );
            record_loop_stats(&sys);
            crate::obs::observe_system_run(&spec.label, seed, &sys, vm.as_ref());
            let r = report.borrow();
            vec![r.cpu_usage_pct, r.mips]
        }
        KernelSpec::Footprint => {
            let Environment::Guest { profile, vnic } = &spec.env else {
                panic!("Footprint measures a guest VM");
            };
            let mut sys = system_for(spec, seed, options);
            let guest = GuestVm::new(guest_config(profile, *vnic), sys.machine());
            let vm = Vm::install(
                &mut sys,
                VmConfig::new(format!("vm-{}", profile.name), Priority::Normal),
                guest,
            );
            record_loop_stats(&sys);
            crate::obs::observe_system_run(&spec.label, seed, &sys, Some(&vm));
            vec![vm.committed_memory as f64 / (1024.0 * 1024.0)]
        }
        KernelSpec::ClockLag { wall } => {
            let Environment::HostUnderVm { profile, priority } = &spec.env else {
                panic!("ClockLag measures a VM's guest clock");
            };
            let mut sys = system_for(spec, seed, options);
            let vm = install_einstein_vm(&mut sys, profile, *priority, fidelity);
            // Saturate both cores so a low-priority vCPU starves.
            sys.spawn("hog1", Priority::Normal, Box::new(Hog));
            sys.spawn("hog2", Priority::Normal, Box::new(Hog));
            sys.run_until(*wall);
            record_loop_stats(&sys);
            crate::obs::observe_system_run(&spec.label, seed, &sys, Some(&vm));
            let control = vm.control.borrow();
            vec![
                control.guest_clock_lag_secs,
                control.guest_clock_loss_events as f64,
            ]
        }
    }
}

/// Run a self-terminating benchmark body natively or inside a guest,
/// waiting event-driven for completion. Returns the guest's handle when
/// one was involved so observed runs can publish its exit counters.
fn run_bench_in_env(
    sys: &mut System,
    env: &Environment,
    name: &str,
    body: Box<dyn ThreadBody>,
) -> Option<VmHandle> {
    match env {
        Environment::Native => {
            sys.spawn(name, Priority::Normal, body);
            assert!(
                sys.run_to_completion(SimTime::from_secs(3600)),
                "{name} did not finish natively"
            );
            None
        }
        Environment::Guest { profile, vnic } => {
            let mut guest = GuestVm::new(guest_config(profile, *vnic), sys.machine());
            guest.spawn(name, body);
            let vm = Vm::install(
                sys,
                VmConfig::new(format!("vm-{}", profile.name), Priority::Normal),
                guest,
            );
            // VirtualBox NAT at ~1.3 Mbps needs over a minute of
            // simulated time for 10 MB, hence the wide deadline.
            assert!(
                vm.run_until_halted(sys, SimTime::from_secs(7200)),
                "{name} did not finish in the guest"
            );
            Some(vm)
        }
        Environment::HostUnderVm { .. } => {
            panic!("{name} does not run beside a VM in any paper experiment")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn specs_are_shareable_across_threads() {
        assert_send_sync::<TrialSpec>();
        assert_send_sync::<Engine>();
    }

    #[test]
    fn single_shot_trials_use_the_base_seed_verbatim() {
        let spec = TrialSpec::new(
            "t",
            Environment::Native,
            KernelSpec::OpLoop {
                block: OpBlock::int_alu(1),
                iters: 1,
            },
            Fidelity::Fast,
        )
        .seed(0xf1);
        assert_eq!(spec.seed_for(0), 0xf1);
    }

    #[test]
    fn repeated_trials_match_the_repetition_runner() {
        let spec = TrialSpec::new(
            "t",
            Environment::Native,
            KernelSpec::OpLoop {
                block: OpBlock::int_alu(1),
                iters: 1,
            },
            Fidelity::Fast,
        )
        .repetitions(3);
        let runner = RepetitionRunner::new().repetitions(3);
        for rep in 0..3 {
            assert_eq!(spec.seed_for(rep), runner.seed_for(rep));
        }
        assert_ne!(spec.seed_for(0), spec.seed_for(1));
    }

    #[test]
    fn cache_key_ignores_label_but_not_seed() {
        let mk = |label: &str, seed: u64| {
            TrialSpec::new(
                label,
                Environment::Native,
                KernelSpec::OpLoop {
                    block: OpBlock::int_alu(1),
                    iters: 1,
                },
                Fidelity::Fast,
            )
            .seed(seed)
        };
        assert_eq!(
            mk("a", 1).cache_key(&RunOptions::default()),
            mk("b", 1).cache_key(&RunOptions::default())
        );
        assert_ne!(
            mk("a", 1).cache_key(&RunOptions::default()),
            mk("a", 2).cache_key(&RunOptions::default())
        );
    }

    /// A family of specs varying every identity axis, for the key
    /// partition/injectivity tests below.
    fn key_test_specs() -> Vec<TrialSpec> {
        let base = |label: &str| {
            TrialSpec::new(
                label,
                Environment::Native,
                KernelSpec::OpLoop {
                    block: OpBlock::int_alu(1),
                    iters: 1,
                },
                Fidelity::Fast,
            )
        };
        vec![
            base("a"),
            base("b"), // label differs, identity equal to "a"
            base("env").seed(2),
            base("reps").repetitions(3),
            base("machine").on_machine(MachineSpec::core2_duo_6600()),
            TrialSpec::new(
                "guest",
                Environment::Guest {
                    profile: VmmProfile::qemu(),
                    vnic: None,
                },
                KernelSpec::OpLoop {
                    block: OpBlock::int_alu(1),
                    iters: 1,
                },
                Fidelity::Fast,
            ),
            TrialSpec::new(
                "kernel",
                Environment::Native,
                KernelSpec::OpLoop {
                    block: OpBlock::int_alu(1),
                    iters: 2,
                },
                Fidelity::Fast,
            ),
            TrialSpec::new(
                "fidelity",
                Environment::Native,
                KernelSpec::OpLoop {
                    block: OpBlock::int_alu(1),
                    iters: 1,
                },
                Fidelity::Paper,
            ),
            TrialSpec::new(
                "campaign-3d",
                Environment::Native,
                KernelSpec::Campaign {
                    project: ProjectConfig::default(),
                    pool: PoolConfig::default(),
                    deploy: DeployConfig::native(),
                    churn: ChurnConfig::off(),
                    horizon: SimTime::from_secs(3 * 24 * 3600),
                },
                Fidelity::Fast,
            ),
            TrialSpec::new(
                "campaign-9d",
                Environment::Native,
                KernelSpec::Campaign {
                    project: ProjectConfig::default(),
                    pool: PoolConfig::default(),
                    deploy: DeployConfig::native(),
                    churn: ChurnConfig::off(),
                    horizon: SimTime::from_secs(9 * 24 * 3600),
                },
                Fidelity::Fast,
            ),
        ]
    }

    #[test]
    fn structured_key_partitions_specs_like_the_legacy_string() {
        let specs = key_test_specs();
        for (i, a) in specs.iter().enumerate() {
            for b in specs.iter().skip(i) {
                assert_eq!(
                    a.legacy_cache_key(&RunOptions::default())
                        == b.legacy_cache_key(&RunOptions::default()),
                    a.cache_key(&RunOptions::default()) == b.cache_key(&RunOptions::default()),
                    "old and new keys disagree for {:?} vs {:?}",
                    a.label,
                    b.label,
                );
            }
        }
    }

    #[test]
    fn structured_key_is_injective_over_distinct_identities() {
        let specs = key_test_specs();
        // Skip index 1 ("b"): it intentionally shares "a"'s identity.
        let distinct: Vec<_> = specs
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != 1)
            .map(|(_, s)| s)
            .collect();
        for (i, a) in distinct.iter().enumerate() {
            for b in distinct.iter().skip(i + 1) {
                assert_ne!(
                    a.cache_key(&RunOptions::default()),
                    b.cache_key(&RunOptions::default()),
                    "key collision between {:?} and {:?}",
                    a.label,
                    b.label,
                );
                assert_ne!(
                    a.cache_key(&RunOptions::default()).to_string(),
                    b.cache_key(&RunOptions::default()).to_string(),
                    "display collision between {:?} and {:?}",
                    a.label,
                    b.label,
                );
            }
        }
    }

    #[test]
    fn campaign_trials_reuse_prefix_trajectories_across_horizons() {
        let project = ProjectConfig {
            workunits: 30,
            wu_ref_secs: 1800.0,
            ..Default::default()
        };
        let pool = PoolConfig {
            volunteers: 40,
            ram_range: (256 << 20, 2 << 30),
            ..Default::default()
        };
        let deploy = DeployConfig::native();
        let churn = ChurnConfig::intensity(0.5);
        let seed = 0x7e57_e461_4e00_0001u64;
        let mk = |days: u64| {
            TrialSpec::new(
                "grid",
                Environment::Native,
                KernelSpec::Campaign {
                    project: project.clone(),
                    pool: pool.clone(),
                    deploy: deploy.clone(),
                    churn: churn.clone(),
                    horizon: SimTime::from_secs(days * 24 * 3600),
                },
                Fidelity::Fast,
            )
            .seed(seed)
        };
        // Ground truth: the flat-queue reference substrate never
        // consults the trajectory cache, so this is a true cold run.
        let reference = |days: u64| {
            CampaignSpec::new("ref")
                .project(project.clone())
                .pool(pool.clone())
                .deploy(deploy.clone())
                .churn(churn.clone())
                .seed(seed)
                .horizon(SimTime::from_secs(days * 24 * 3600))
                .hydrated_reference(true)
                .build()
                .expect("valid spec")
                .run_seq()
                .reports()[0]
                .clone()
        };
        let engine = Engine::new();
        engine.run_trial(&mk(3)); // stores the 3-day prefix snapshot
        let before = vgrid_grid::fastforward::stats();
        let warm = engine.run_trial(&mk(9)); // horizon-only cache miss
        let after = vgrid_grid::fastforward::stats();
        assert!(
            after.trajectory_hits > before.trajectory_hits,
            "horizon extension did not resume from the stored prefix",
        );
        let expect = reference(9);
        assert_eq!(
            warm.metric("validated_wus").mean.to_bits(),
            (expect.validated_wus as f64).to_bits(),
        );
        assert_eq!(
            warm.metric("efficiency").mean.to_bits(),
            expect.efficiency.to_bits(),
        );
        assert_eq!(
            warm.metric("goodput").mean.to_bits(),
            expect.goodput.to_bits(),
        );
        assert_eq!(
            warm.metric("makespan_inflation").mean.to_bits(),
            expect.makespan_inflation.to_bits(),
        );
    }

    #[test]
    fn engine_caches_identical_trials() {
        let engine = Engine::new();
        let spec = TrialSpec::new(
            "loop",
            Environment::Native,
            KernelSpec::OpLoop {
                block: OpBlock::int_alu(24_000_000),
                iters: 2,
            },
            Fidelity::Fast,
        )
        .seed(11);
        let first = engine.run_trial(&spec);
        let relabeled = TrialSpec {
            label: "other".into(),
            ..spec
        };
        let second = engine.run_trial(&relabeled);
        assert_eq!(second.label, "other");
        assert_eq!(first.value(), second.value());
        assert_eq!(
            engine
                .cache
                .lock()
                .expect("engine trial cache poisoned")
                .len(),
            1
        );
    }

    #[test]
    fn parallel_and_sequential_paths_agree() {
        let mk = |label: &str, seed: u64| {
            TrialSpec::new(
                label,
                Environment::Native,
                KernelSpec::OpLoop {
                    block: OpBlock::int_alu(24_000_000),
                    iters: 2,
                },
                Fidelity::Fast,
            )
            .seed(seed)
            .repetitions(4)
        };
        let specs = vec![mk("a", 5), mk("b", 6)];
        let par = Engine::new().run_trials(&specs);
        let seq = Engine::new().run_trials_seq(&specs);
        for (p, s) in par.iter().zip(&seq) {
            let (pm, sm) = (p.summary(), s.summary());
            assert_eq!(pm.mean, sm.mean);
            assert_eq!(pm.stddev, sm.stddev);
            assert_eq!(pm.min, sm.min);
            assert_eq!(pm.max, sm.max);
        }
    }
}
