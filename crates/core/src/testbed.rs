//! Shared experiment machinery: fidelity levels, the kernel-loop body,
//! and native/guest run helpers.

use std::cell::RefCell;
use std::rc::Rc;
use vgrid_machine::ops::OpBlock;
use vgrid_os::{Action, Priority, System, SystemConfig, ThreadBody, ThreadCtx};
use vgrid_simcore::SimTime;
use vgrid_vmm::{GuestConfig, GuestVm, Vm, VmConfig, VmHandle, VmmProfile, VnicMode};

/// How faithfully to reproduce the paper's configuration.
///
/// `Fast` shrinks corpora/iterations/repetitions so the whole suite runs
/// in seconds (used by unit/integration tests); `Paper` uses the paper's
/// sizes and 50 repetitions where randomness matters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fidelity {
    /// Scaled-down, seconds-per-figure.
    Fast,
    /// Paper-faithful sizes.
    Paper,
}

impl Fidelity {
    /// Pick between a fast and a paper-faithful value.
    pub fn pick<T>(self, fast: T, paper: T) -> T {
        match self {
            Fidelity::Fast => fast,
            Fidelity::Paper => paper,
        }
    }

    /// Repetition count for repeated measurements (paper: >= 50).
    pub fn repetitions(self) -> u32 {
        self.pick(3, 50)
    }
}

/// Shared cell receiving a loop's (start, end) wall-time span.
pub type SpanCell = Rc<RefCell<Option<(SimTime, SimTime)>>>;

/// ThreadBody that executes `block` `iters` times, records the wall-time
/// span into a shared cell, then exits.
#[derive(Debug)]
pub struct KernelLoop {
    /// Shared handle to the block; re-issued (not deep-copied) per
    /// iteration.
    block: Rc<OpBlock>,
    iters: u64,
    done: u64,
    started: Option<SimTime>,
    /// Receives (start, end) when finished.
    pub span: SpanCell,
}

impl KernelLoop {
    /// Build the body and its result cell.
    pub fn new(block: OpBlock, iters: u64) -> (Self, SpanCell) {
        let span = Rc::new(RefCell::new(None));
        (
            KernelLoop {
                block: Rc::new(block),
                iters: iters.max(1),
                done: 0,
                started: None,
                span: span.clone(),
            },
            span,
        )
    }
}

impl ThreadBody for KernelLoop {
    fn next(&mut self, ctx: &mut ThreadCtx<'_>) -> Action {
        match self.started {
            None => {
                self.started = Some(ctx.now);
                Action::Compute(self.block.clone())
            }
            Some(t0) => {
                self.done += 1;
                if self.done >= self.iters {
                    *self.span.borrow_mut() = Some((t0, ctx.now));
                    Action::Exit
                } else {
                    Action::Compute(self.block.clone())
                }
            }
        }
    }
}

/// Build the standard testbed host system.
pub fn host_system(seed: u64) -> System {
    System::new(SystemConfig::testbed(seed))
}

/// Wall seconds to run `block` x `iters` natively on an otherwise idle
/// host.
pub fn run_native_loop(block: &OpBlock, iters: u64, seed: u64) -> f64 {
    let mut sys = host_system(seed);
    let (body, span) = KernelLoop::new(block.clone(), iters);
    sys.spawn("bench", Priority::Normal, Box::new(body));
    assert!(
        sys.run_to_completion(SimTime::from_secs(3600)),
        "native loop did not finish"
    );
    let (t0, t1) = span.borrow().expect("loop finished");
    t1.since(t0).as_secs_f64()
}

/// Wall seconds (measured from the host side, i.e. with the paper's
/// external time reference) to run `block` x `iters` inside a guest of
/// the given profile, on an otherwise idle host.
pub fn run_guest_loop(profile: &VmmProfile, block: &OpBlock, iters: u64, seed: u64) -> f64 {
    let mut sys = host_system(seed);
    let mut guest = GuestVm::new(GuestConfig::new(profile.clone()), sys.machine());
    let (body, span) = KernelLoop::new(block.clone(), iters);
    guest.spawn("bench", Box::new(body));
    let vm = Vm::install(
        &mut sys,
        VmConfig::new(format!("vm-{}", profile.name), Priority::Normal),
        guest,
    );
    assert!(
        vm.run_until_halted(&mut sys, SimTime::from_secs(3600)),
        "guest loop did not finish"
    );
    let (t0, t1) = span.borrow().expect("loop finished");
    t1.since(t0).as_secs_f64()
}

/// Install a VM running the Einstein@home surrogate at 100 % virtual CPU
/// (the paper's host-impact workload), at the given host priority.
pub fn install_einstein_vm(
    sys: &mut System,
    profile: &VmmProfile,
    priority: Priority,
    fidelity: Fidelity,
) -> VmHandle {
    use vgrid_workloads::einstein::{EinsteinBody, EinsteinKernel};
    let kernel = EinsteinKernel {
        fft_len: fidelity.pick(4_096, 262_144),
        templates: fidelity.pick(4, 16),
        seed: 0xe5e5,
    };
    let (body, _progress) = EinsteinBody::new(&kernel, None);
    let mut guest = GuestVm::new(GuestConfig::new(profile.clone()), sys.machine());
    guest.spawn("einstein", Box::new(body));
    Vm::install(
        sys,
        VmConfig::new(format!("vm-{}", profile.name), priority),
        guest,
    )
}

/// Convenience: all four profiles plus, for network experiments, the
/// VmPlayer-bridged variant.
pub fn paper_profiles() -> Vec<VmmProfile> {
    VmmProfile::all()
}

/// Network environments of Figure 4: (label, profile, mode).
pub fn fig4_environments() -> Vec<(String, VmmProfile, VnicMode)> {
    vec![
        (
            "VmPlayer-bridged".to_string(),
            VmmProfile::vmplayer(),
            VnicMode::Bridged,
        ),
        (
            "VmPlayer-NAT".to_string(),
            VmmProfile::vmplayer(),
            VnicMode::Nat,
        ),
        ("QEMU".to_string(), VmmProfile::qemu(), VnicMode::Nat),
        (
            "VirtualBox".to_string(),
            VmmProfile::virtualbox(),
            VnicMode::Nat,
        ),
        (
            "VirtualPC".to_string(),
            VmmProfile::virtualpc(),
            VnicMode::Nat,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fidelity_pick() {
        assert_eq!(Fidelity::Fast.pick(1, 2), 1);
        assert_eq!(Fidelity::Paper.pick(1, 2), 2);
        assert_eq!(Fidelity::Paper.repetitions(), 50);
    }

    #[test]
    fn native_loop_timing_matches_block_estimate() {
        // 24M int ops = 4 ms at 6e9 ops/s; 10 iters = 40 ms.
        let block = OpBlock::int_alu(24_000_000);
        let wall = run_native_loop(&block, 10, 1);
        assert!((wall - 0.040).abs() < 0.002, "wall {wall}");
    }

    #[test]
    fn guest_loop_is_dilated_native_loop() {
        let block = OpBlock::int_alu(240_000_000); // 40 ms native
        let native = run_native_loop(&block, 5, 1);
        let guest = run_guest_loop(&VmmProfile::vmplayer(), &block, 5, 1);
        let rel = guest / native;
        assert!((1.10..1.25).contains(&rel), "rel {rel}");
    }

    #[test]
    fn einstein_vm_pins_its_vcpu() {
        let mut sys = host_system(3);
        let vm = install_einstein_vm(
            &mut sys,
            &VmmProfile::virtualbox(),
            Priority::Normal,
            Fidelity::Fast,
        );
        sys.run_until(SimTime::from_secs(2));
        let cpu = sys.thread_stats(vm.vcpu).cpu_time.as_secs_f64();
        assert!(cpu > 1.8, "vcpu cpu {cpu}");
    }

    #[test]
    fn fig4_env_list_matches_paper() {
        let envs = fig4_environments();
        assert_eq!(envs.len(), 5);
        assert_eq!(envs[0].0, "VmPlayer-bridged");
        assert_eq!(envs[1].0, "VmPlayer-NAT");
    }
}
