//! # vgrid-core
//!
//! The `vgrid` testbed: a deterministic, full-system reproduction of
//! *"Evaluating the Performance and Intrusiveness of Virtual Machines
//! for Desktop Grid Computing"* (Domingues, Araujo & Silva, 2009).
//!
//! This crate is the experiment harness: it composes the hardware models
//! (`vgrid-machine`), the host OS (`vgrid-os`), the four calibrated
//! monitors (`vgrid-vmm`), the real benchmark kernels
//! (`vgrid-workloads`), the timing methodology (`vgrid-timeref`) and the
//! volunteer-grid substrate (`vgrid-grid`) into the paper's experiments,
//! figure by figure.
//!
//! ## Quick start
//!
//! ```
//! use vgrid_core::{experiments, Fidelity};
//!
//! // Reproduce Figure 1 (7z guest slowdown) at test fidelity.
//! let fig1 = experiments::fig1::run(Fidelity::Fast);
//! println!("{}", fig1.render());
//! assert!(fig1.value_of("QEMU").unwrap() > fig1.value_of("VMwarePlayer").unwrap());
//! ```
//!
//! ## Layout
//!
//! * [`experiments`] — one module per paper artifact (fig1..fig8,
//!   tab-mem), plus ablations of the paper's prose claims and extension
//!   experiments (grid deployment, guest-clock methodology).
//! * [`engine`] — the unified experiment engine: declarative trial
//!   specs, one parallel repetition path, cached shared baselines.
//! * [`obs`] — observability capture: merged metric snapshots,
//!   Chrome-trace export and run manifests for `vgrid run/trace`.
//! * [`testbed`] — fidelity levels and native/guest run helpers.
//! * [`figures`] — result containers, ASCII rendering, JSON.
//! * [`calibration`] — the paper-vs-measured comparison table.
//! * [`parallel`] — deterministic scoped-thread repetition sweeps.

#![forbid(unsafe_code)]

pub mod calibration;
pub mod engine;
pub mod experiments;
pub mod figures;
pub mod obs;
pub mod parallel;
pub mod testbed;

pub use engine::{loop_totals, Engine, Environment, KernelSpec, TrialResult, TrialSpec};
pub use figures::{FigureResult, FigureRow};
pub use testbed::Fidelity;
