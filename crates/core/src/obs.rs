//! Observability capture for engine runs.
//!
//! [`begin_capture`] arms a process-global capture. While armed, the
//! [`Engine`](crate::engine::Engine) runs sequentially (so publication
//! order is the deterministic job order), every `System` it builds gets
//! an enlarged, fully-enabled trace sink, and each freshly simulated
//! repetition publishes its metrics and trace stream here.
//! [`take_capture`] disarms and returns everything collected;
//! [`run_observed`] wraps an experiment run end to end and renders the
//! run manifest plus the Chrome-trace document.
//!
//! Determinism contract (DESIGN.md §11): everything captured derives
//! from simulation state only — virtual timestamps, seeded RNG streams,
//! event counters. No wall-clock value ever enters a capture, so two
//! same-seed runs render byte-identical artifacts. Trials served from
//! the engine cache are counted (`engine.cache_hits`) but re-publish
//! nothing; within one process the cache state at each publication
//! point is itself deterministic, so the merged snapshot is too.

use std::sync::Mutex;

use crate::engine::DEFAULT_BASE_SEED;
use crate::experiments;
use crate::figures::FigureResult;
use crate::testbed::Fidelity;
use vgrid_grid::GridReport;
use vgrid_os::System;
use vgrid_simcore::{SimTime, TraceEvent};
use vgrid_simobs::manifest::config_digest;
use vgrid_simobs::{ChromeTraceBuilder, MetricsRegistry, RunManifest};
use vgrid_vmm::VmHandle;

/// Trace-sink capacity for observed runs. The default sink is sized for
/// debugging tails; observed runs want the whole event stream (drops
/// are still deterministic and surface as `engine.trace_dropped`).
pub(crate) const OBS_TRACE_CAPACITY: usize = 256 * 1024;

/// The trace stream of one simulated repetition.
#[derive(Debug, Clone)]
pub struct TrialTrace {
    /// Label of the owning trial.
    pub label: String,
    /// Seed of this repetition.
    pub seed: u64,
    /// Simulated clock when the repetition ended (span end for the
    /// per-phase profiling track).
    pub sim_end: SimTime,
    /// Events in virtual-time order (the sink preserves emission
    /// order, which is monotone in sim time).
    pub events: Vec<TraceEvent>,
}

/// Everything one observed run collected.
#[derive(Debug, Default)]
pub struct RunCapture {
    /// Merged metric snapshot of every publication.
    pub metrics: MetricsRegistry,
    /// Per-repetition trace streams, in job order.
    pub traces: Vec<TrialTrace>,
    /// Trial labels, in request order (cache hits included).
    pub trial_labels: Vec<String>,
    /// Trial identity strings (engine cache keys), in request order.
    pub trial_keys: Vec<String>,
    /// Fast-forward reuse counters at arm time. The grid's segment
    /// and trajectory caches are process-global; the manifest reports
    /// this run's delta, not the process lifetime totals.
    pub ff_baseline: vgrid_grid::FastForwardStats,
}

static CAPTURE: Mutex<Option<RunCapture>> = Mutex::new(None);

/// Arm the process-global capture, discarding any previous one.
pub fn begin_capture() {
    *CAPTURE.lock().expect("core::obs::CAPTURE poisoned") = Some(RunCapture {
        ff_baseline: vgrid_grid::fastforward::stats(),
        ..RunCapture::default()
    });
}

/// Disarm the capture and return what it collected; `None` when no
/// capture was armed.
pub fn take_capture() -> Option<RunCapture> {
    CAPTURE.lock().expect("core::obs::CAPTURE poisoned").take()
}

/// Whether a capture is currently armed.
pub fn capturing() -> bool {
    CAPTURE
        .lock()
        .expect("core::obs::CAPTURE poisoned")
        .is_some()
}

fn with_capture(f: impl FnOnce(&mut RunCapture)) {
    if let Some(cap) = CAPTURE
        .lock()
        .expect("core::obs::CAPTURE poisoned")
        .as_mut()
    {
        f(cap);
    }
}

/// Record one trial request (called by the engine for every spec,
/// cached or not).
pub(crate) fn note_trial(label: &str, key: &str, cached: bool) {
    with_capture(|cap| {
        cap.trial_labels.push(label.to_string());
        cap.trial_keys.push(key.to_string());
        cap.metrics.counter_add("engine.trials", 1);
        cap.metrics.counter_add(
            if cached {
                "engine.cache_hits"
            } else {
                "engine.cache_misses"
            },
            1,
        );
    });
}

/// Publish one completed `System`-backed repetition: OS metrics, the
/// VM's exit counters when one was involved, and the trace stream.
pub(crate) fn observe_system_run(label: &str, seed: u64, sys: &System, vm: Option<&VmHandle>) {
    with_capture(|cap| {
        sys.publish_metrics(&mut cap.metrics);
        if let Some(vm) = vm {
            vm.publish_metrics(&mut cap.metrics);
        }
        cap.metrics.counter_add("engine.reps", 1);
        cap.metrics
            .counter_add("engine.trace_dropped", sys.trace.dropped());
        cap.traces.push(TrialTrace {
            label: label.to_string(),
            seed,
            sim_end: sys.now(),
            events: sys.trace.events().cloned().collect(),
        });
    });
}

/// Publish one completed grid campaign repetition (the campaign
/// simulator has no `System`/trace sink; its report carries the
/// counters).
pub(crate) fn observe_campaign_run(label: &str, seed: u64, report: &GridReport) {
    with_capture(|cap| {
        report.publish_metrics(&mut cap.metrics);
        cap.metrics.counter_add("engine.reps", 1);
        cap.traces.push(TrialTrace {
            label: label.to_string(),
            seed,
            sim_end: SimTime::from_secs_f64(report.makespan_secs),
            events: Vec::new(),
        });
    });
}

/// A completed observed run: the figure plus both rendered artifacts.
#[derive(Debug)]
pub struct ObservedRun {
    /// The experiment's figure result (what `vgrid run` prints).
    pub figure: FigureResult,
    /// The run manifest document (`--metrics-json`).
    pub manifest_json: String,
    /// The Chrome-trace document (`vgrid trace`).
    pub trace_json: String,
}

fn fidelity_name(fidelity: Fidelity) -> &'static str {
    match fidelity {
        Fidelity::Fast => "fast",
        Fidelity::Paper => "paper",
    }
}

fn scheduler_mode_name() -> &'static str {
    if vgrid_os::per_quantum_reference_forced() {
        "per-quantum-reference"
    } else {
        "coalesced"
    }
}

/// Bench scenarios (`BENCH_engine.json`) exercising the same simulation
/// substrate as an experiment, for cross-referencing regressions.
fn bench_links(id: &str) -> Vec<String> {
    let links: &[&str] = match id {
        "fig1" => &[
            "fig1_substrate",
            "fig1_substrate_fast",
            "fig1_substrate_reference",
        ],
        "fig7" | "fig8" => &["fig7_substrate"],
        _ => &[],
    };
    links.iter().map(|s| s.to_string()).collect()
}

/// Run an experiment by id with observation enabled; returns the figure
/// plus rendered manifest and trace documents, or `None` for an unknown
/// id. Output is a pure function of `(id, fidelity, scheduler mode,
/// engine cache state)`; a fresh process renders byte-identical
/// documents for the same invocation.
pub fn run_observed(id: &str, fidelity: Fidelity) -> Option<ObservedRun> {
    begin_capture();
    let figure = experiments::run_by_id(id, fidelity);
    let cap = take_capture().unwrap_or_default();
    let figure = figure?;

    let mut metrics = cap.metrics;
    let hits = metrics.counter("os.cache.contention_hits") as f64;
    let misses = metrics.counter("os.cache.contention_misses") as f64;
    if hits + misses > 0.0 {
        // Derived once at snapshot time from merged counters — rates
        // are never merged (they do not compose additively).
        metrics.gauge_add("os.cache.contention_hit_rate", hits / (hits + misses));
    }
    // Engine trial-cache hit rate, derived the same way.
    let ehits = metrics.counter("engine.cache_hits") as f64;
    let emisses = metrics.counter("engine.cache_misses") as f64;
    if ehits + emisses > 0.0 {
        metrics.gauge_add("engine.cache_hit_rate", ehits / (ehits + emisses));
    }
    // Grid fast-forward reuse: this run's delta over the process-global
    // segment-solution and trajectory caches (zero rows are omitted so
    // non-grid experiments render unchanged).
    let ff = vgrid_grid::fastforward::stats();
    let base = cap.ff_baseline;
    let seg_hits = ff.segment_hits - base.segment_hits;
    let seg_misses = ff.segment_misses - base.segment_misses;
    if seg_hits + seg_misses > 0 {
        metrics.counter_add("grid.fastforward.segment_hits", seg_hits);
        metrics.counter_add("grid.fastforward.segment_misses", seg_misses);
        metrics.gauge_add(
            "grid.fastforward.segment_hit_rate",
            seg_hits as f64 / (seg_hits + seg_misses) as f64,
        );
    }
    let traj_hits = ff.trajectory_hits - base.trajectory_hits;
    let traj_misses = ff.trajectory_misses - base.trajectory_misses;
    if traj_hits + traj_misses > 0 {
        metrics.counter_add("grid.fastforward.trajectory_hits", traj_hits);
        metrics.counter_add("grid.fastforward.trajectory_misses", traj_misses);
        metrics.gauge_add(
            "grid.fastforward.trajectory_hit_rate",
            traj_hits as f64 / (traj_hits + traj_misses) as f64,
        );
    }

    let manifest = RunManifest {
        experiment: id.to_string(),
        fidelity: fidelity_name(fidelity).to_string(),
        scheduler_mode: scheduler_mode_name().to_string(),
        seed: DEFAULT_BASE_SEED,
        config_digest: config_digest(&cap.trial_keys),
        trials: cap.trial_labels,
        bench_links: bench_links(id),
        metrics,
    };

    let mut trace = ChromeTraceBuilder::new();
    for (i, t) in cap.traces.iter().enumerate() {
        let pid = (i + 1) as u32;
        trace.add_trial(pid, &format!("{} [seed {:#018x}]", t.label, t.seed));
        trace.add_phase_span(pid, "run", SimTime::ZERO, t.sim_end);
        for ev in &t.events {
            trace.add_event(pid, ev);
        }
    }

    Some(ObservedRun {
        figure,
        manifest_json: manifest.render_json(),
        trace_json: trace.render(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_round_trip() {
        begin_capture();
        assert!(capturing());
        note_trial("t", "key", false);
        let cap = take_capture().expect("armed");
        assert!(!capturing());
        assert_eq!(cap.trial_labels, vec!["t".to_string()]);
        assert_eq!(cap.metrics.counter("engine.cache_misses"), 1);
        assert!(take_capture().is_none());
    }

    #[test]
    fn observed_run_is_repeatable_in_process() {
        // Campaign trials bypass the engine cache-publication subtlety
        // only partially; fig1 exercises the System path. Two observed
        // runs in one process differ only through cache hits, which the
        // manifest records — so compare a cache-cold run against itself.
        let a = run_observed("fig1", Fidelity::Fast).expect("fig1 exists");
        assert!(a.manifest_json.contains("\"experiment\":\"fig1\""));
        assert!(a.manifest_json.contains("\"scheduler_mode\":\"coalesced\""));
        assert!(a.trace_json.starts_with("{\"displayTimeUnit\":\"ms\""));
        assert!(a.manifest_json.ends_with("\n"));
    }

    #[test]
    fn unknown_id_disarms_capture() {
        assert!(run_observed("not-an-experiment", Fidelity::Fast).is_none());
        assert!(!capturing());
    }
}
