//! Parallel repetition sweeps.
//!
//! The paper repeats every measurement at least 50 times. Repetitions of
//! a deterministic simulation are embarrassingly parallel — each builds
//! its own `System` from `(config, seed)` — so the paper-fidelity suite
//! fans them out over a scoped thread pool. Determinism is preserved:
//! each repetition's seed is a pure function of `(base_seed, index)`,
//! per-repetition results land in an index-addressed slot vector, and
//! the Welford fold always runs in index order — so the statistics are
//! bit-identical to the sequential path regardless of thread scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use vgrid_simcore::{OnlineStats, RepetitionRunner, Summary};

/// Map `f` over `0..n` on a scoped worker pool, returning results in
/// index order. Work is claimed through an atomic cursor so uneven job
/// costs balance across workers; output order is fixed by index, not by
/// completion order, keeping downstream folds deterministic.
pub fn parallel_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n);
    if workers <= 1 {
        return (0..n).map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let value = f(i);
                *slots[i].lock().expect("parallel_map result slot poisoned") = Some(value);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().unwrap().expect("worker filled slot"))
        .collect()
}

/// Run `f(seed)` for each repetition in parallel and summarize.
pub fn run_parallel<F>(runner: &RepetitionRunner, f: F) -> Summary
where
    F: Fn(u64) -> f64 + Sync,
{
    let values = parallel_map(
        runner.count() as usize,
        |rep| f(runner.seed_for(rep as u32)),
    );
    let mut stats = OnlineStats::new();
    for v in values {
        stats.push(v);
    }
    stats.summary()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_runner() {
        let runner = RepetitionRunner::new().repetitions(64).base_seed(9);
        let f = |seed: u64| (seed % 10_000) as f64 / 100.0;
        let seq = runner.run(f);
        let par = run_parallel(&runner, f);
        assert_eq!(seq.n, par.n);
        assert!((seq.mean - par.mean).abs() < 1e-9);
        assert!((seq.stddev - par.stddev).abs() < 1e-9);
        assert_eq!(seq.min, par.min);
        assert_eq!(seq.max, par.max);
    }

    #[test]
    fn deterministic_across_invocations() {
        let runner = RepetitionRunner::new().repetitions(32);
        let f = |seed: u64| (seed as f64).sqrt();
        let a = run_parallel(&runner, f);
        let b = run_parallel(&runner, f);
        assert_eq!(a.mean, b.mean);
    }

    #[test]
    fn parallel_map_preserves_index_order() {
        let out = parallel_map(257, |i| i * 3);
        assert_eq!(out.len(), 257);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 3);
        }
    }

    #[test]
    fn parallel_simulation_repetitions() {
        // Real use: repetitions of a small simulated run.
        use crate::testbed::run_native_loop;
        use vgrid_machine::ops::OpBlock;
        let runner = RepetitionRunner::new().repetitions(8);
        let block = OpBlock::int_alu(24_000_000);
        let s = run_parallel(&runner, |seed| run_native_loop(&block, 2, seed));
        assert_eq!(s.n, 8);
        // 2 x 4 ms of work.
        assert!((s.mean - 0.008).abs() < 0.001, "mean {}", s.mean);
    }
}
