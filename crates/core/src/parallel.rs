//! Parallel repetition sweeps.
//!
//! The paper repeats every measurement at least 50 times. Repetitions of
//! a deterministic simulation are embarrassingly parallel — each builds
//! its own `System` from `(config, seed)` — so the paper-fidelity suite
//! fans them out over Rayon. Determinism is preserved: each repetition's
//! seed is a pure function of `(base_seed, index)` and the accumulator
//! merge is order-insensitive for the statistics we report (Welford
//! merge; the tiny float non-associativity is far below measurement
//! granularity, and tests pin mean equality against the sequential path
//! within 1e-9).

use rayon::prelude::*;
use vgrid_simcore::{OnlineStats, RepetitionRunner, Summary};

/// Run `f(seed)` for each repetition in parallel and summarize.
pub fn run_parallel<F>(runner: &RepetitionRunner, f: F) -> Summary
where
    F: Fn(u64) -> f64 + Sync,
{
    let stats = (0..runner.count())
        .into_par_iter()
        .map(|rep| {
            let mut acc = OnlineStats::new();
            acc.push(f(runner.seed_for(rep)));
            acc
        })
        .reduce(OnlineStats::new, |mut a, b| {
            a.merge(&b);
            a
        });
    stats.summary()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_runner() {
        let runner = RepetitionRunner::new().repetitions(64).base_seed(9);
        let f = |seed: u64| (seed % 10_000) as f64 / 100.0;
        let seq = runner.run(f);
        let par = run_parallel(&runner, f);
        assert_eq!(seq.n, par.n);
        assert!((seq.mean - par.mean).abs() < 1e-9);
        assert!((seq.stddev - par.stddev).abs() < 1e-9);
        assert_eq!(seq.min, par.min);
        assert_eq!(seq.max, par.max);
    }

    #[test]
    fn deterministic_across_invocations() {
        let runner = RepetitionRunner::new().repetitions(32);
        let f = |seed: u64| (seed as f64).sqrt();
        let a = run_parallel(&runner, f);
        let b = run_parallel(&runner, f);
        assert_eq!(a.mean, b.mean);
    }

    #[test]
    fn parallel_simulation_repetitions() {
        // Real use: repetitions of a small simulated run.
        use crate::testbed::run_native_loop;
        use vgrid_machine::ops::OpBlock;
        let runner = RepetitionRunner::new().repetitions(8);
        let block = OpBlock::int_alu(24_000_000);
        let s = run_parallel(&runner, |seed| run_native_loop(&block, 2, seed));
        assert_eq!(s.n, 8);
        // 2 x 4 ms of work.
        assert!((s.mean - 0.008).abs() < 0.001, "mean {}", s.mean);
    }
}
