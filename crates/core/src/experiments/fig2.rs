//! Figure 2 — Relative performance of Matrix on virtual machines.
//!
//! The naive double-precision matrix multiply (512x512 and 1024x1024)
//! runs in each guest; results are normalized against native. The paper
//! finds floating point "only marginally deteriorated": everything below
//! 1.20 except QEMU at ~1.30.

use crate::figures::{FigureResult, FigureRow};
use crate::testbed::{paper_profiles, run_guest_loop, run_native_loop, Fidelity};
use vgrid_simcore::OnlineStats;
use vgrid_workloads::matrix::MatrixKernel;

fn paper_value(name: &str) -> f64 {
    match name {
        "VMwarePlayer" => 1.08,
        "QEMU" => 1.30,
        "VirtualBox" => 1.12,
        "VirtualPC" => 1.18,
        _ => 1.0,
    }
}

/// Run the experiment for both paper sizes; the reported row value is the
/// mean of the two sizes (the paper plots them side by side with nearly
/// identical ratios).
pub fn run(fidelity: Fidelity) -> FigureResult {
    let sizes: Vec<usize> = fidelity.pick(vec![128, 256], vec![512, 1024]);
    let blocks: Vec<_> = sizes
        .iter()
        .map(|&n| MatrixKernel { n, seed: 1 }.characterize_scaled())
        .collect();
    let natives: Vec<f64> = blocks
        .iter()
        .map(|b| run_native_loop(b, 1, 1))
        .collect();

    let mut fig = FigureResult::new(
        "fig2",
        "Relative performance of Matrix on virtual machines",
        "slowdown vs native (native = 1.0)",
    );
    fig.push(FigureRow::new("native", 1.0).with_paper(1.0));
    for profile in paper_profiles() {
        let mut stats = OnlineStats::new();
        for (block, native) in blocks.iter().zip(&natives) {
            let wall = run_guest_loop(&profile, block, 1, 1);
            stats.push(wall / native);
        }
        fig.push(
            FigureRow::new(profile.name, stats.mean())
                .with_paper(paper_value(profile.name))
                .with_detail(format!(
                    "sizes {:?}: per-size {:.3}..{:.3}",
                    sizes,
                    stats.min(),
                    stats.max()
                )),
        );
    }
    fig.note(format!("naive i-j-k matmul of f64, sizes {sizes:?}"));
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_shape_matches_paper() {
        let fig = run(Fidelity::Fast);
        let v = |l: &str| fig.value_of(l).unwrap();
        // FP is hurt less than integer: all below 1.25 except QEMU.
        for name in ["VMwarePlayer", "VirtualBox", "VirtualPC"] {
            assert!(v(name) > 1.0, "{name} {}", v(name));
            assert!(v(name) < 1.25, "{name} {}", v(name));
        }
        assert!(v("QEMU") > 1.2 && v("QEMU") < 1.6, "QEMU {}", v("QEMU"));
        // QEMU worst, VmPlayer best.
        assert!(v("VMwarePlayer") < v("VirtualBox"));
        assert!(v("VirtualPC") < v("QEMU"));
    }
}
