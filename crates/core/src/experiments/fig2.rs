//! Figure 2 — Relative performance of Matrix on virtual machines.
//!
//! The naive double-precision matrix multiply (512x512 and 1024x1024)
//! runs in each guest; results are normalized against native. The paper
//! finds floating point "only marginally deteriorated": everything below
//! 1.20 except QEMU at ~1.30.

use crate::engine::{Engine, Environment, KernelSpec, TrialSpec};
use crate::figures::{FigureResult, FigureRow};
use crate::testbed::{paper_profiles, Fidelity};
use vgrid_simcore::OnlineStats;
use vgrid_workloads::matrix::MatrixKernel;

fn paper_value(name: &str) -> f64 {
    match name {
        "VMwarePlayer" => 1.08,
        "QEMU" => 1.30,
        "VirtualBox" => 1.12,
        "VirtualPC" => 1.18,
        _ => 1.0,
    }
}

/// The paper's matrix sizes at this fidelity.
fn sizes(fidelity: Fidelity) -> Vec<usize> {
    fidelity.pick(vec![128, 256], vec![512, 1024])
}

/// Trial specs: one native trial per size, then one guest trial per
/// (monitor, size), in that order.
pub fn specs(fidelity: Fidelity) -> Vec<TrialSpec> {
    let blocks: Vec<_> = sizes(fidelity)
        .into_iter()
        .map(|n| (n, MatrixKernel { n, seed: 1 }.characterize_scaled()))
        .collect();
    let loop_kernel = |block| KernelSpec::OpLoop { block, iters: 1 };
    let mut specs: Vec<TrialSpec> = blocks
        .iter()
        .map(|(n, block)| {
            TrialSpec::new(
                format!("native-{n}"),
                Environment::Native,
                loop_kernel(block.clone()),
                fidelity,
            )
            .seed(1)
        })
        .collect();
    for profile in paper_profiles() {
        for (n, block) in &blocks {
            specs.push(
                TrialSpec::new(
                    format!("{}-{n}", profile.name),
                    Environment::Guest {
                        profile: profile.clone(),
                        vnic: None,
                    },
                    loop_kernel(block.clone()),
                    fidelity,
                )
                .seed(1),
            );
        }
    }
    specs
}

/// Run the experiment for both paper sizes on the given engine; the
/// reported row value is the mean of the two sizes (the paper plots
/// them side by side with nearly identical ratios).
pub fn run_with(engine: &Engine, fidelity: Fidelity) -> FigureResult {
    let sizes = sizes(fidelity);
    let results = engine.run_trials(&specs(fidelity));
    let (natives, guests) = results.split_at(sizes.len());

    let mut fig = FigureResult::new(
        "fig2",
        "Relative performance of Matrix on virtual machines",
        "slowdown vs native (native = 1.0)",
    );
    fig.push(FigureRow::new("native", 1.0).with_paper(1.0));
    for (p, profile) in paper_profiles().iter().enumerate() {
        let mut stats = OnlineStats::new();
        for (s, native) in natives.iter().enumerate() {
            let guest = &guests[p * sizes.len() + s];
            stats.push(guest.value() / native.value());
        }
        fig.push(
            FigureRow::new(profile.name, stats.mean())
                .with_paper(paper_value(profile.name))
                .with_detail(format!(
                    "sizes {:?}: per-size {:.3}..{:.3}",
                    sizes,
                    stats.min(),
                    stats.max()
                )),
        );
    }
    fig.note(format!("naive i-j-k matmul of f64, sizes {sizes:?}"));
    fig
}

/// Run the experiment on the process-wide engine.
pub fn run(fidelity: Fidelity) -> FigureResult {
    run_with(Engine::global(), fidelity)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_shape_matches_paper() {
        let fig = run(Fidelity::Fast);
        let v = |l: &str| fig.value_of(l).unwrap();
        // FP is hurt less than integer: all below 1.25 except QEMU.
        for name in ["VMwarePlayer", "VirtualBox", "VirtualPC"] {
            assert!(v(name) > 1.0, "{name} {}", v(name));
            assert!(v(name) < 1.25, "{name} {}", v(name));
        }
        assert!(v("QEMU") > 1.2 && v("QEMU") < 1.6, "QEMU {}", v("QEMU"));
        // QEMU worst, VmPlayer best.
        assert!(v("VMwarePlayer") < v("VirtualBox"));
        assert!(v("VirtualPC") < v("QEMU"));
    }
}
