//! `timing-method` — the paper's measurement-methodology experiment.
//!
//! Section 4: "to circumvent the timing imprecision that occur on virtual
//! machines, especially when the machines are under high load, time
//! measurements ... were done resorting to an external time reference
//! ... a simple UDP time server running on the host machine." And
//! Section 4.2.2 explains NBench cannot run in a guest because its many
//! short timed sections trust the guest clock.
//!
//! This experiment quantifies both statements on the testbed: each
//! monitor runs a CPU-pinned guest while the host is saturated with
//! normal-priority load (starving the idle-priority vCPU), and we report
//! how far the guest's clock falls behind the external reference.

use crate::engine::{Engine, Environment, KernelSpec, TrialSpec};
use crate::figures::{FigureResult, FigureRow};
use crate::testbed::{paper_profiles, Fidelity};
use vgrid_os::Priority;
use vgrid_simcore::SimTime;

/// Trial specs: one clock-lag measurement per monitor, vCPU at Idle
/// priority under a saturated host (the paper's worst case).
pub fn specs(fidelity: Fidelity) -> Vec<TrialSpec> {
    let wall = fidelity.pick(SimTime::from_secs(20), SimTime::from_secs(120));
    paper_profiles()
        .into_iter()
        .map(|profile| {
            TrialSpec::new(
                profile.name,
                Environment::HostUnderVm {
                    profile,
                    priority: Priority::Idle,
                },
                KernelSpec::ClockLag { wall },
                fidelity,
            )
            .seed(0x7131)
        })
        .collect()
}

/// Run the experiment on the given engine: guest clock error per
/// monitor under host load.
pub fn run_with(engine: &Engine, fidelity: Fidelity) -> FigureResult {
    let wall = fidelity.pick(SimTime::from_secs(20), SimTime::from_secs(120));
    let results = engine.run_trials(&specs(fidelity));

    let mut fig = FigureResult::new(
        "timing-method",
        "Guest clock error under host load (why the paper uses a UDP time server)",
        "% of wall time lost by the guest clock",
    );
    for trial in &results {
        let lag = trial.metric("lag_secs").mean;
        let loss_events = trial.metric("loss_events").mean;
        let pct = 100.0 * lag / wall.as_secs_f64();
        fig.push(FigureRow::new(&trial.label, pct).with_detail(format!(
            "{lag:.1}s behind after {:.0}s wall, {loss_events:.0} tick-loss events",
            wall.as_secs_f64()
        )));
    }
    fig.note("vCPU at Idle priority, both host cores saturated (the paper's worst case)");
    fig.note(
        "the external UDP reference stays accurate to tens of microseconds (see vgrid-timeref)",
    );
    fig
}

/// Run the experiment on the process-wide engine.
pub fn run(fidelity: Fidelity) -> FigureResult {
    run_with(Engine::global(), fidelity)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbed::{host_system, install_einstein_vm};

    #[test]
    fn starved_guests_lose_wall_time() {
        let fig = run(Fidelity::Fast);
        for row in &fig.rows {
            assert!(
                row.value > 5.0,
                "{} lost only {:.2}% — starved guest clocks must drift",
                row.label,
                row.value
            );
            assert!(row.value < 100.0, "{} {}", row.label, row.value);
        }
    }

    #[test]
    fn unloaded_guest_keeps_time() {
        // Companion check: with no host load the vCPU runs continuously
        // and the clock keeps up.
        let mut sys = host_system(0x7132);
        let vm = install_einstein_vm(
            &mut sys,
            &vgrid_vmm::VmmProfile::vmplayer(),
            Priority::Normal,
            Fidelity::Fast,
        );
        sys.run_until(SimTime::from_secs(10));
        let lag = vm.control.borrow().guest_clock_lag_secs;
        assert!(lag < 0.2, "unloaded guest lag {lag}");
    }
}
