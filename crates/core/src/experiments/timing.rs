//! `timing-method` — the paper's measurement-methodology experiment.
//!
//! Section 4: "to circumvent the timing imprecision that occur on virtual
//! machines, especially when the machines are under high load, time
//! measurements ... were done resorting to an external time reference
//! ... a simple UDP time server running on the host machine." And
//! Section 4.2.2 explains NBench cannot run in a guest because its many
//! short timed sections trust the guest clock.
//!
//! This experiment quantifies both statements on the testbed: each
//! monitor runs a CPU-pinned guest while the host is saturated with
//! normal-priority load (starving the idle-priority vCPU), and we report
//! how far the guest's clock falls behind the external reference.

use crate::figures::{FigureResult, FigureRow};
use crate::testbed::{host_system, install_einstein_vm, paper_profiles, Fidelity};
use vgrid_machine::ops::OpBlock;
use vgrid_os::{Action, Priority, ThreadBody, ThreadCtx};
use vgrid_simcore::SimTime;

/// Infinite CPU hog used to starve the vCPU.
#[derive(Debug)]
struct Hog;
impl ThreadBody for Hog {
    fn next(&mut self, _ctx: &mut ThreadCtx<'_>) -> Action {
        Action::Compute(OpBlock::int_alu(10_000_000))
    }
}

/// Run the experiment: guest clock error per monitor under host load.
pub fn run(fidelity: Fidelity) -> FigureResult {
    let wall = fidelity.pick(SimTime::from_secs(20), SimTime::from_secs(120));
    let mut fig = FigureResult::new(
        "timing-method",
        "Guest clock error under host load (why the paper uses a UDP time server)",
        "% of wall time lost by the guest clock",
    );
    for profile in paper_profiles() {
        let mut sys = host_system(0x7131);
        let vm = install_einstein_vm(&mut sys, &profile, Priority::Idle, fidelity);
        // Saturate both cores so the idle-priority vCPU starves.
        sys.spawn("hog1", Priority::Normal, Box::new(Hog));
        sys.spawn("hog2", Priority::Normal, Box::new(Hog));
        sys.run_until(wall);
        let lag = vm.control.borrow().guest_clock_lag_secs;
        let loss_events = vm.control.borrow().guest_clock_loss_events;
        let pct = 100.0 * lag / wall.as_secs_f64();
        fig.push(
            FigureRow::new(profile.name, pct).with_detail(format!(
                "{lag:.1}s behind after {:.0}s wall, {loss_events} tick-loss events",
                wall.as_secs_f64()
            )),
        );
    }
    fig.note("vCPU at Idle priority, both host cores saturated (the paper's worst case)");
    fig.note("the external UDP reference stays accurate to tens of microseconds (see vgrid-timeref)");
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starved_guests_lose_wall_time() {
        let fig = run(Fidelity::Fast);
        for row in &fig.rows {
            assert!(
                row.value > 5.0,
                "{} lost only {:.2}% — starved guest clocks must drift",
                row.label,
                row.value
            );
            assert!(row.value < 100.0, "{} {}", row.label, row.value);
        }
    }

    #[test]
    fn unloaded_guest_keeps_time() {
        // Companion check: with no host load the vCPU runs continuously
        // and the clock keeps up.
        let mut sys = host_system(0x7132);
        let vm = install_einstein_vm(
            &mut sys,
            &vgrid_vmm::VmmProfile::vmplayer(),
            Priority::Normal,
            Fidelity::Fast,
        );
        sys.run_until(SimTime::from_secs(10));
        let lag = vm.control.borrow().guest_clock_lag_secs;
        assert!(lag < 0.2, "unloaded guest lag {lag}");
    }
}
