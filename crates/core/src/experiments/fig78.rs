//! Figures 7 and 8 — host-side 7z while the guest computes at 100 %.
//!
//! 7z runs on the host in 1- and 2-thread mode while each VM (at idle
//! priority, as the paper configures for this test) runs Einstein@home.
//!
//! * Figure 7: the %CPU available to 7z. Paper: 1-thread ~100 % for all;
//!   2-thread: no-VM 180 %, QEMU/VirtualBox/VirtualPC ~160 %, VmPlayer
//!   ~120 %.
//! * Figure 8: 7z's MIPS relative to the no-VM run. Paper: VmPlayer
//!   ~-30 %, others ~-10 %.

use crate::figures::{FigureResult, FigureRow};
use crate::testbed::{host_system, install_einstein_vm, paper_profiles, Fidelity};
use vgrid_os::Priority;
use vgrid_simcore::{SimDuration, SimTime};
use vgrid_vmm::VmmProfile;
use vgrid_workloads::sevenz::{SevenZBody, SevenZConfig, SevenZReport};

/// Run host-side 7z with `threads` workers, optionally next to an
/// idle-priority Einstein VM.
pub fn sevenz_on_host(
    threads: u32,
    vm: Option<&VmmProfile>,
    fidelity: Fidelity,
) -> SevenZReport {
    let mut sys = host_system(0x78);
    if let Some(profile) = vm {
        install_einstein_vm(&mut sys, profile, Priority::Idle, fidelity);
        sys.run_until(SimTime::from_millis(200));
    }
    let cfg = SevenZConfig {
        threads,
        corpus_len: fidelity.pick(32 * 1024, 128 * 1024),
        depth: fidelity.pick(8, 16),
        duration: fidelity.pick(SimDuration::from_secs(2), SimDuration::from_secs(8)),
        ..Default::default()
    };
    let (body, report) = SevenZBody::new(cfg, Priority::Normal);
    sys.spawn("7z", Priority::Normal, Box::new(body));
    let deadline = SimTime::from_secs(3600);
    while !report.borrow().complete && sys.now() < deadline {
        let t = sys.now() + SimDuration::from_secs(1);
        sys.run_until(t);
    }
    let r = report.borrow().clone();
    assert!(r.complete, "7z did not finish");
    r
}

fn paper_cpu(label: &str) -> f64 {
    match label {
        "no VM (1t)" => 100.0,
        "VMwarePlayer (1t)" | "VirtualBox (1t)" | "VirtualPC (1t)" => 100.0,
        "QEMU (1t)" => 98.0,
        "no VM (2t)" => 180.0,
        "VMwarePlayer (2t)" => 120.0,
        "QEMU (2t)" | "VirtualBox (2t)" | "VirtualPC (2t)" => 160.0,
        _ => 0.0,
    }
}

fn paper_mips_ratio(label: &str) -> f64 {
    match label {
        "no VM (2t)" => 1.0,
        "VMwarePlayer (2t)" => 0.70,
        "QEMU (2t)" | "VirtualBox (2t)" | "VirtualPC (2t)" => 0.90,
        _ => 1.0,
    }
}

/// Run both figures; returns (fig7, fig8).
pub fn run(fidelity: Fidelity) -> (FigureResult, FigureResult) {
    let mut fig7 = FigureResult::new(
        "fig7",
        "Available %CPU for host OS when guest OS is running at 100%",
        "% CPU reported by 7z (200 = both cores)",
    );
    let mut fig8 = FigureResult::new(
        "fig8",
        "MIPS for 7z when guest OS is running at 100%",
        "MIPS ratio vs no-VM run (1.0 = unimpacted)",
    );
    for threads in [1u32, 2] {
        let base = sevenz_on_host(threads, None, fidelity);
        let tag = format!("({threads}t)");
        fig7.push(
            FigureRow::new(format!("no VM {tag}"), base.cpu_usage_pct)
                .with_paper(paper_cpu(&format!("no VM {tag}"))),
        );
        fig8.push(
            FigureRow::new(format!("no VM {tag}"), 1.0)
                .with_paper(paper_mips_ratio(&format!("no VM {tag}")))
                .with_detail(format!("{:.0} MIPS absolute", base.mips)),
        );
        for profile in paper_profiles() {
            let rep = sevenz_on_host(threads, Some(&profile), fidelity);
            let label = format!("{} {tag}", profile.name);
            fig7.push(
                FigureRow::new(&label, rep.cpu_usage_pct).with_paper(paper_cpu(&label)),
            );
            fig8.push(
                FigureRow::new(&label, rep.mips / base.mips)
                    .with_paper(paper_mips_ratio(&label)),
            );
        }
    }
    let note =
        "7z benchmark on the host at Normal priority; VM at Idle priority running Einstein@home";
    fig7.note(note);
    fig8.note(note);
    (fig7, fig8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_shape_matches_paper() {
        let (fig7, _) = run(Fidelity::Fast);
        let v = |l: &str| fig7.value_of(l).unwrap();
        // Single-threaded host 7z is essentially unimpacted.
        for label in [
            "no VM (1t)",
            "VMwarePlayer (1t)",
            "QEMU (1t)",
            "VirtualBox (1t)",
            "VirtualPC (1t)",
        ] {
            assert!(v(label) > 93.0, "{label}: {}", v(label));
            assert!(v(label) <= 102.0, "{label}: {}", v(label));
        }
        // Two threads, no VM: ~180 % (not 200: hardware contention).
        assert!((170.0..195.0).contains(&v("no VM (2t)")), "{}", v("no VM (2t)"));
        // VmPlayer costs ~60 points; the others ~20.
        assert!(
            (110.0..135.0).contains(&v("VMwarePlayer (2t)")),
            "vmp {}",
            v("VMwarePlayer (2t)")
        );
        for label in ["QEMU (2t)", "VirtualBox (2t)", "VirtualPC (2t)"] {
            assert!((148.0..172.0).contains(&v(label)), "{label}: {}", v(label));
        }
        // VmPlayer is the most intrusive.
        assert!(v("VMwarePlayer (2t)") < v("QEMU (2t)") - 15.0);
    }

    #[test]
    fn fig8_shape_matches_paper() {
        let (_, fig8) = run(Fidelity::Fast);
        let v = |l: &str| fig8.value_of(l).unwrap();
        // VmPlayer reduces MIPS by roughly 30 %, the others by ~10 %.
        assert!(
            (0.60..0.80).contains(&v("VMwarePlayer (2t)")),
            "vmp {}",
            v("VMwarePlayer (2t)")
        );
        for label in ["QEMU (2t)", "VirtualBox (2t)", "VirtualPC (2t)"] {
            assert!((0.80..0.98).contains(&v(label)), "{label}: {}", v(label));
        }
        // Single-threaded MIPS barely affected.
        for label in ["VMwarePlayer (1t)", "QEMU (1t)"] {
            assert!(v(label) > 0.90, "{label}: {}", v(label));
        }
    }
}
