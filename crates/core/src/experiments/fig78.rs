//! Figures 7 and 8 — host-side 7z while the guest computes at 100 %.
//!
//! 7z runs on the host in 1- and 2-thread mode while each VM (at idle
//! priority, as the paper configures for this test) runs Einstein@home.
//!
//! * Figure 7: the %CPU available to 7z. Paper: 1-thread ~100 % for all;
//!   2-thread: no-VM 180 %, QEMU/VirtualBox/VirtualPC ~160 %, VmPlayer
//!   ~120 %.
//! * Figure 8: 7z's MIPS relative to the no-VM run. Paper: VmPlayer
//!   ~-30 %, others ~-10 %.

use crate::engine::{Engine, Environment, KernelSpec, TrialSpec};
use crate::figures::{FigureResult, FigureRow};
use crate::testbed::{paper_profiles, Fidelity};
use vgrid_os::Priority;
use vgrid_simcore::SimDuration;
use vgrid_vmm::VmmProfile;
use vgrid_workloads::sevenz::SevenZConfig;

/// One host-side 7z trial spec with `threads` workers, optionally
/// beside an idle-priority Einstein VM. Shared with `abl-bt`, which
/// reuses the 2-thread trials through the engine cache.
pub fn sevenz_spec(
    label: impl Into<String>,
    threads: u32,
    vm: Option<VmmProfile>,
    fidelity: Fidelity,
) -> TrialSpec {
    let cfg = SevenZConfig {
        threads,
        corpus_len: fidelity.pick(32 * 1024, 128 * 1024),
        depth: fidelity.pick(8, 16),
        duration: fidelity.pick(SimDuration::from_secs(2), SimDuration::from_secs(8)),
        ..Default::default()
    };
    let env = match vm {
        None => Environment::Native,
        Some(profile) => Environment::HostUnderVm {
            profile,
            priority: Priority::Idle,
        },
    };
    TrialSpec::new(label, env, KernelSpec::SevenZHost(cfg), fidelity).seed(0x78)
}

/// Trial specs, grouped per thread count: the no-VM baseline then the
/// four monitors, first for 1 thread, then for 2.
pub fn specs(fidelity: Fidelity) -> Vec<TrialSpec> {
    let mut specs = Vec::new();
    for threads in [1u32, 2] {
        specs.push(sevenz_spec(
            format!("no VM ({threads}t)"),
            threads,
            None,
            fidelity,
        ));
        for profile in paper_profiles() {
            specs.push(sevenz_spec(
                format!("{} ({threads}t)", profile.name),
                threads,
                Some(profile),
                fidelity,
            ));
        }
    }
    specs
}

fn paper_cpu(label: &str) -> f64 {
    match label {
        "no VM (1t)" => 100.0,
        "VMwarePlayer (1t)" | "VirtualBox (1t)" | "VirtualPC (1t)" => 100.0,
        "QEMU (1t)" => 98.0,
        "no VM (2t)" => 180.0,
        "VMwarePlayer (2t)" => 120.0,
        "QEMU (2t)" | "VirtualBox (2t)" | "VirtualPC (2t)" => 160.0,
        _ => 0.0,
    }
}

fn paper_mips_ratio(label: &str) -> f64 {
    match label {
        "no VM (2t)" => 1.0,
        "VMwarePlayer (2t)" => 0.70,
        "QEMU (2t)" | "VirtualBox (2t)" | "VirtualPC (2t)" => 0.90,
        _ => 1.0,
    }
}

/// Run both figures on the given engine; returns (fig7, fig8).
pub fn run_with(engine: &Engine, fidelity: Fidelity) -> (FigureResult, FigureResult) {
    let results = engine.run_trials(&specs(fidelity));
    let per_group = 1 + paper_profiles().len();

    let mut fig7 = FigureResult::new(
        "fig7",
        "Available %CPU for host OS when guest OS is running at 100%",
        "% CPU reported by 7z (200 = both cores)",
    );
    let mut fig8 = FigureResult::new(
        "fig8",
        "MIPS for 7z when guest OS is running at 100%",
        "MIPS ratio vs no-VM run (1.0 = unimpacted)",
    );
    for group in results.chunks(per_group) {
        let base = &group[0];
        fig7.push(
            FigureRow::new(&base.label, base.metric("cpu_pct").mean)
                .with_paper(paper_cpu(&base.label)),
        );
        fig8.push(
            FigureRow::new(&base.label, 1.0)
                .with_paper(paper_mips_ratio(&base.label))
                .with_detail(format!("{:.0} MIPS absolute", base.metric("mips").mean)),
        );
        for trial in &group[1..] {
            fig7.push(
                FigureRow::new(&trial.label, trial.metric("cpu_pct").mean)
                    .with_paper(paper_cpu(&trial.label)),
            );
            fig8.push(
                FigureRow::new(
                    &trial.label,
                    trial.metric("mips").mean / base.metric("mips").mean,
                )
                .with_paper(paper_mips_ratio(&trial.label)),
            );
        }
    }
    let note =
        "7z benchmark on the host at Normal priority; VM at Idle priority running Einstein@home";
    fig7.note(note);
    fig8.note(note);
    (fig7, fig8)
}

/// Run the experiment on the process-wide engine.
pub fn run(fidelity: Fidelity) -> (FigureResult, FigureResult) {
    run_with(Engine::global(), fidelity)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_shape_matches_paper() {
        let (fig7, _) = run(Fidelity::Fast);
        let v = |l: &str| fig7.value_of(l).unwrap();
        // Single-threaded host 7z is essentially unimpacted.
        for label in [
            "no VM (1t)",
            "VMwarePlayer (1t)",
            "QEMU (1t)",
            "VirtualBox (1t)",
            "VirtualPC (1t)",
        ] {
            assert!(v(label) > 93.0, "{label}: {}", v(label));
            assert!(v(label) <= 102.0, "{label}: {}", v(label));
        }
        // Two threads, no VM: ~180 % (not 200: hardware contention).
        assert!(
            (170.0..195.0).contains(&v("no VM (2t)")),
            "{}",
            v("no VM (2t)")
        );
        // VmPlayer costs ~60 points; the others ~20.
        assert!(
            (110.0..135.0).contains(&v("VMwarePlayer (2t)")),
            "vmp {}",
            v("VMwarePlayer (2t)")
        );
        for label in ["QEMU (2t)", "VirtualBox (2t)", "VirtualPC (2t)"] {
            assert!((148.0..172.0).contains(&v(label)), "{label}: {}", v(label));
        }
        // VmPlayer is the most intrusive.
        assert!(v("VMwarePlayer (2t)") < v("QEMU (2t)") - 15.0);
    }

    #[test]
    fn fig8_shape_matches_paper() {
        let (_, fig8) = run(Fidelity::Fast);
        let v = |l: &str| fig8.value_of(l).unwrap();
        // VmPlayer reduces MIPS by roughly 30 %, the others by ~10 %.
        assert!(
            (0.60..0.80).contains(&v("VMwarePlayer (2t)")),
            "vmp {}",
            v("VMwarePlayer (2t)")
        );
        for label in ["QEMU (2t)", "VirtualBox (2t)", "VirtualPC (2t)"] {
            assert!((0.80..0.98).contains(&v(label)), "{label}: {}", v(label));
        }
        // Single-threaded MIPS barely affected.
        for label in ["VMwarePlayer (1t)", "QEMU (1t)"] {
            assert!(v(label) > 0.90, "{label}: {}", v(label));
        }
    }
}
