//! `grid-tradeoff` — deployment-scale consequences of the paper's
//! measurements (extension experiment).
//!
//! A volunteer campaign runs the same science workload natively and
//! under each monitor. VM deployments pay the calibrated CPU dilation,
//! the initialization-workunit image download (Gonzalez et al.: 1.4 GB),
//! VM-RAM checkpoints and the 300 MB committed-memory host exclusion —
//! quantifying the trade the paper's conclusion weighs qualitatively.

use crate::figures::{FigureResult, FigureRow};
use crate::testbed::Fidelity;
use vgrid_grid::{run_campaign, DeployConfig, PoolConfig, ProjectConfig};
#[allow(unused_imports)]
use vgrid_grid::ExecutionMode;
use vgrid_simcore::SimTime;
use vgrid_vmm::VmmProfile;

fn project(fidelity: Fidelity) -> ProjectConfig {
    ProjectConfig {
        // More work than the horizon can finish: the metric is validated
        // throughput at the horizon, which (unlike makespan) is not
        // dominated by the luck of the last straggler.
        workunits: fidelity.pick(8_000, 40_000),
        wu_ref_secs: fidelity.pick(1800.0, 4.0 * 3600.0),
        ..Default::default()
    }
}

fn pool(fidelity: Fidelity) -> PoolConfig {
    PoolConfig {
        volunteers: fidelity.pick(40, 200),
        ..Default::default()
    }
}

/// Run the campaign comparison.
pub fn run(fidelity: Fidelity) -> FigureResult {
    let horizon = SimTime::from_secs(fidelity.pick(7, 30) * 24 * 3600);
    let project = project(fidelity);
    let pool = pool(fidelity);

    let mut fig = FigureResult::new(
        "grid-tradeoff",
        "Volunteer-project throughput: native vs VM-sandboxed deployment",
        "work units validated within the horizon (higher is better)",
    );
    let mut deployments = vec![("native".to_string(), DeployConfig::native())];
    for profile in VmmProfile::all() {
        deployments.push((
            format!("vm-{}", profile.name),
            DeployConfig::vm(profile, 1_400 << 20),
        ));
    }
    for (label, deploy) in deployments {
        // Average over seeds: individual churn trajectories carry a few
        // percent of noise, below the dilation signal but not by much
        // for the fastest monitor.
        let seeds = [0x6e1d_u64, 0x6e1e, 0x6e1f];
        let mut validated = 0.0;
        let mut detail = String::new();
        for &seed in &seeds {
            let r = run_campaign(&project, &pool, &deploy, seed, horizon);
            validated += r.validated_wus as f64 / seeds.len() as f64;
            if detail.is_empty() {
                detail = format!(
                    "efficiency {:.2}, {} hosts excluded (RAM), {:.0} h image transfer",
                    r.efficiency,
                    r.hosts_excluded_ram,
                    r.image_transfer_secs / 3600.0
                );
            }
        }
        fig.push(FigureRow::new(&label, validated).with_detail(detail));
    }
    fig.note(format!(
        "{} work units x {:.1} h reference CPU, {} volunteers, quorum {}",
        project.workunits,
        project.wu_ref_secs / 3600.0,
        pool.volunteers,
        project.quorum
    ));
    fig.note("VM rows pay calibrated CPU dilation + 1.4 GB image + RAM exclusion");
    fig
}

/// `grid-image` — Section 1's image-size concern, quantified: "To
/// contain the size of the virtual machine image, one can choose a small
/// footprint distribution, such as ttylinux. However, this will always
/// impose a download that might not be affordable for all the would-be
/// volunteers."
pub fn image_size_sweep(fidelity: Fidelity) -> FigureResult {
    // Short horizon + abundant work: the one-time image download is a
    // meaningful share of each volunteer's early uptime.
    let horizon = SimTime::from_secs(fidelity.pick(2, 7) * 24 * 3600);
    let project = ProjectConfig {
        workunits: 100_000,
        wu_ref_secs: fidelity.pick(900.0, 3600.0),
        ..project(fidelity)
    };
    let pool = pool(fidelity);
    let mut fig = FigureResult::new(
        "grid-image",
        "VM image size vs volunteer-project throughput (ttylinux vs full distro)",
        "work units validated within the horizon",
    );
    for (label, bytes) in [
        ("ttylinux-ish (50 MB)", 50u64 << 20),
        ("small distro (300 MB)", 300 << 20),
        ("full distro (1.4 GB)", 1_400 << 20),
        ("DVD image (4 GB)", 4_096 << 20),
    ] {
        // Seed-averaged: the one-time download is ~10 % of early uptime
        // at the largest size, comparable to single-trajectory noise.
        let seeds = [0x113a_u64, 0x113b, 0x113c, 0x113d, 0x113e];
        let mut validated = 0.0;
        let mut transfer_h = 0.0;
        for &seed in &seeds {
            let r = run_campaign(
                &project,
                &pool,
                &DeployConfig::vm(VmmProfile::vmplayer(), bytes),
                seed,
                horizon,
            );
            validated += r.validated_wus as f64 / seeds.len() as f64;
            transfer_h += r.image_transfer_secs / 3600.0 / seeds.len() as f64;
        }
        fig.push(FigureRow::new(label, validated).with_detail(format!(
            "{transfer_h:.0} h of pool time spent on image transfer"
        )));
    }
    fig.note("one-time initialization-workunit download per volunteer (Gonzalez et al.)");
    fig
}

/// `grid-migration` — the checkpoint/migration feature's payoff under
/// churn (Section 1 motivates exportable VM state).
pub fn migration_comparison(fidelity: Fidelity) -> FigureResult {
    // Migration is a *straggler* remedy: it pays when work is scarce and
    // long tasks camp on flaky hosts (capacity-bound campaigns gain
    // nothing from shipping state — a fresh copy uses the same cycles).
    let horizon = SimTime::from_secs(fidelity.pick(4, 10) * 24 * 3600);
    let project = ProjectConfig {
        workunits: fidelity.pick(60, 150),
        wu_ref_secs: fidelity.pick(3.0 * 3600.0, 8.0 * 3600.0),
        ..project(fidelity)
    };
    let pool = PoolConfig {
        mean_uptime_secs: 2.0 * 3600.0,
        mean_downtime_secs: 20.0 * 3600.0,
        ..pool(fidelity)
    };
    let mut fig = FigureResult::new(
        "grid-migration",
        "Churn migration of checkpointed VM state: throughput with long tasks on flaky hosts",
        "work units validated within the horizon",
    );
    let base = DeployConfig::vm(VmmProfile::vmplayer(), 300 << 20);
    let stay = run_campaign(&project, &pool, &base, 0x317e, horizon);
    let migrate = run_campaign(
        &project,
        &pool,
        &base.clone().with_migration(),
        0x317e,
        horizon,
    );
    fig.push(
        FigureRow::new("resume on original host", stay.validated_wus as f64)
            .with_detail(format!("{} migrations", stay.migrations)),
    );
    fig.push(
        FigureRow::new("migrate checkpointed state", migrate.validated_wus as f64)
            .with_detail(format!(
                "{} migrations of 300 MB state each",
                migrate.migrations
            )),
    );
    fig.note("tasks outlive host uptime spans; migration ships the VM checkpoint via the server");
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bigger_images_cost_throughput() {
        let fig = image_size_sweep(Fidelity::Fast);
        let tty = fig.value_of("ttylinux-ish (50 MB)").unwrap();
        let dvd = fig.value_of("DVD image (4 GB)").unwrap();
        assert!(tty >= dvd, "tty {tty} vs dvd {dvd}");
        assert!(tty > 0.0);
    }

    #[test]
    fn migration_helps_under_churn() {
        let fig = migration_comparison(Fidelity::Fast);
        let stay = fig.value_of("resume on original host").unwrap();
        let migrate = fig.value_of("migrate checkpointed state").unwrap();
        assert!(migrate >= stay, "migrate {migrate} vs stay {stay}");
    }

    #[test]
    fn vm_deployments_yield_less_than_native() {
        let fig = run(Fidelity::Fast);
        let native = fig.value_of("native").unwrap();
        assert!(native > 50.0, "native validated too little: {native}");
        for name in ["VMwarePlayer", "QEMU", "VirtualBox", "VirtualPC"] {
            let vm = fig.value_of(&format!("vm-{name}")).unwrap();
            assert!(vm < native, "vm-{name} {vm} vs native {native}");
            assert!(vm > 0.3 * native, "vm-{name} collapsed: {vm}");
        }
        // QEMU (worst CPU dilation) validates the least.
        let qemu = fig.value_of("vm-QEMU").unwrap();
        for name in ["VMwarePlayer", "VirtualBox", "VirtualPC"] {
            assert!(qemu <= fig.value_of(&format!("vm-{name}")).unwrap());
        }
    }
}
