//! `grid-tradeoff` — deployment-scale consequences of the paper's
//! measurements (extension experiment).
//!
//! A volunteer campaign runs the same science workload natively and
//! under each monitor. VM deployments pay the calibrated CPU dilation,
//! the initialization-workunit image download (Gonzalez et al.: 1.4 GB),
//! VM-RAM checkpoints and the 300 MB committed-memory host exclusion —
//! quantifying the trade the paper's conclusion weighs qualitatively.

use crate::engine::{Engine, Environment, KernelSpec, TrialSpec};
use crate::figures::{FigureResult, FigureRow};
use crate::testbed::Fidelity;
#[allow(unused_imports)]
use vgrid_grid::ExecutionMode;
use vgrid_grid::{ChurnConfig, DeployConfig, MigrationPolicy, PoolConfig, ProjectConfig};
use vgrid_simcore::{SimDuration, SimTime};
use vgrid_vmm::VmmProfile;

fn project(fidelity: Fidelity) -> ProjectConfig {
    ProjectConfig {
        // More work than the horizon can finish: the metric is validated
        // throughput at the horizon, which (unlike makespan) is not
        // dominated by the luck of the last straggler.
        workunits: fidelity.pick(8_000, 40_000),
        wu_ref_secs: fidelity.pick(1800.0, 4.0 * 3600.0),
        ..Default::default()
    }
}

fn pool(fidelity: Fidelity) -> PoolConfig {
    PoolConfig {
        volunteers: fidelity.pick(40, 200),
        ..Default::default()
    }
}

/// A campaign trial spec. Campaign kernels carry their own deployment,
/// so the environment is `Native` by convention.
fn campaign_spec(
    label: impl Into<String>,
    project: &ProjectConfig,
    pool: &PoolConfig,
    deploy: DeployConfig,
    horizon: SimTime,
    fidelity: Fidelity,
) -> TrialSpec {
    campaign_spec_churn(
        label,
        project,
        pool,
        deploy,
        ChurnConfig::off(),
        horizon,
        fidelity,
    )
}

/// Churn-capable twin of [`campaign_spec`], for the fault-injection and
/// migration-policy sweeps.
fn campaign_spec_churn(
    label: impl Into<String>,
    project: &ProjectConfig,
    pool: &PoolConfig,
    deploy: DeployConfig,
    churn: ChurnConfig,
    horizon: SimTime,
    fidelity: Fidelity,
) -> TrialSpec {
    TrialSpec::new(
        label,
        Environment::Native,
        KernelSpec::Campaign {
            project: project.clone(),
            pool: pool.clone(),
            deploy,
            churn,
            horizon,
        },
        fidelity,
    )
}

/// Run the campaign comparison on the given engine.
pub fn run_with(engine: &Engine, fidelity: Fidelity) -> FigureResult {
    let horizon = SimTime::from_secs(fidelity.pick(7, 30) * 24 * 3600);
    let project = project(fidelity);
    let pool = pool(fidelity);

    let mut deployments = vec![("native".to_string(), DeployConfig::native())];
    for profile in VmmProfile::all() {
        deployments.push((
            format!("vm-{}", profile.name),
            DeployConfig::vm(profile, 1_400 << 20),
        ));
    }
    // Averaged over seeds: individual churn trajectories carry a few
    // percent of noise, below the dilation signal but not by much for
    // the fastest monitor.
    let specs: Vec<TrialSpec> = deployments
        .into_iter()
        .map(|(label, deploy)| {
            campaign_spec(label, &project, &pool, deploy, horizon, fidelity)
                .seed(0x6e1d)
                .repetitions(3)
        })
        .collect();
    let results = engine.run_trials(&specs);

    let mut fig = FigureResult::new(
        "grid-tradeoff",
        "Volunteer-project throughput: native vs VM-sandboxed deployment",
        "work units validated within the horizon (higher is better)",
    );
    for trial in &results {
        fig.push(
            FigureRow::new(&trial.label, trial.metric("validated_wus").mean).with_detail(format!(
                "efficiency {:.2}, {:.0} hosts excluded (RAM), {:.0} h image transfer",
                trial.metric("efficiency").mean,
                trial.metric("hosts_excluded_ram").mean,
                trial.metric("image_transfer_secs").mean / 3600.0
            )),
        );
    }
    fig.note(format!(
        "{} work units x {:.1} h reference CPU, {} volunteers, quorum {}",
        project.workunits,
        project.wu_ref_secs / 3600.0,
        pool.volunteers,
        project.quorum
    ));
    fig.note("VM rows pay calibrated CPU dilation + 1.4 GB image + RAM exclusion");
    fig
}

/// Run the campaign comparison on the process-wide engine.
pub fn run(fidelity: Fidelity) -> FigureResult {
    run_with(Engine::global(), fidelity)
}

/// `grid-image` — Section 1's image-size concern, quantified: "To
/// contain the size of the virtual machine image, one can choose a small
/// footprint distribution, such as ttylinux. However, this will always
/// impose a download that might not be affordable for all the would-be
/// volunteers."
pub fn image_size_sweep_with(engine: &Engine, fidelity: Fidelity) -> FigureResult {
    // Short horizon + abundant work: the one-time image download is a
    // meaningful share of each volunteer's early uptime.
    let horizon = SimTime::from_secs(fidelity.pick(2, 7) * 24 * 3600);
    let project = ProjectConfig {
        workunits: 100_000,
        wu_ref_secs: fidelity.pick(900.0, 3600.0),
        ..project(fidelity)
    };
    let pool = pool(fidelity);
    let images = [
        ("ttylinux-ish (50 MB)", 50u64 << 20),
        ("small distro (300 MB)", 300 << 20),
        ("full distro (1.4 GB)", 1_400 << 20),
        ("DVD image (4 GB)", 4_096 << 20),
    ];
    // Seed-averaged: the one-time download is ~10 % of early uptime at
    // the largest size, comparable to single-trajectory noise.
    let specs: Vec<TrialSpec> = images
        .iter()
        .map(|&(label, bytes)| {
            campaign_spec(
                label,
                &project,
                &pool,
                DeployConfig::vm(VmmProfile::vmplayer(), bytes),
                horizon,
                fidelity,
            )
            .seed(0x113a)
            .repetitions(5)
        })
        .collect();
    let results = engine.run_trials(&specs);

    let mut fig = FigureResult::new(
        "grid-image",
        "VM image size vs volunteer-project throughput (ttylinux vs full distro)",
        "work units validated within the horizon",
    );
    for trial in &results {
        fig.push(
            FigureRow::new(&trial.label, trial.metric("validated_wus").mean).with_detail(format!(
                "{:.0} h of pool time spent on image transfer",
                trial.metric("image_transfer_secs").mean / 3600.0
            )),
        );
    }
    fig.note("one-time initialization-workunit download per volunteer (Gonzalez et al.)");
    fig
}

/// Run `grid-image` on the process-wide engine.
pub fn image_size_sweep(fidelity: Fidelity) -> FigureResult {
    image_size_sweep_with(Engine::global(), fidelity)
}

/// Churn levels swept by the migration-policy rows, lowest to highest.
const POLICY_SWEEP_LEVELS: [f64; 2] = [1.0, 3.0];

/// Policy variants swept per churn level, in row order.
fn policy_sweep_policies() -> [(&'static str, MigrationPolicy); 3] {
    [
        ("checkpoint-only", MigrationPolicy::off()),
        ("rescue", MigrationPolicy::rescue_only()),
        ("rescue+evacuate", MigrationPolicy::full()),
    ]
}

/// Trial specs for the churn x policy sweep: a finishing workload with
/// a tight reissue deadline, so straggler rescue has both a trigger
/// (the deadline) and a payoff (the makespan). Shared by the figure and
/// its gating test so they sweep identical campaigns.
fn policy_sweep_specs(fidelity: Fidelity) -> Vec<TrialSpec> {
    let horizon = SimTime::from_secs(fidelity.pick(10, 14) * 24 * 3600);
    let project = ProjectConfig {
        workunits: fidelity.pick(24, 48),
        wu_ref_secs: 3.0 * 3600.0,
        deadline: SimDuration::from_secs(24 * 3600),
        ..Default::default()
    };
    let pool = PoolConfig {
        volunteers: fidelity.pick(30, 60),
        ..Default::default()
    };
    let base = DeployConfig::vm(VmmProfile::vmplayer(), 300 << 20);
    let mut specs = Vec::new();
    for &level in &POLICY_SWEEP_LEVELS {
        for (name, policy) in policy_sweep_policies() {
            specs.push(
                campaign_spec_churn(
                    format!("churn {level:.1} {name}"),
                    &project,
                    &pool,
                    base.clone().with_policy(policy),
                    ChurnConfig::intensity(level),
                    horizon,
                    fidelity,
                )
                .seed(0x7e5c)
                .repetitions(2),
            );
        }
    }
    specs
}

/// `grid-migration` — the checkpoint/migration feature's payoff under
/// churn (Section 1 motivates exportable VM state).
pub fn migration_comparison_with(engine: &Engine, fidelity: Fidelity) -> FigureResult {
    // Migration is a *straggler* remedy: it pays when work is scarce and
    // long tasks camp on flaky hosts (capacity-bound campaigns gain
    // nothing from shipping state — a fresh copy uses the same cycles).
    let horizon = SimTime::from_secs(fidelity.pick(4, 10) * 24 * 3600);
    let project = ProjectConfig {
        workunits: fidelity.pick(60, 150),
        wu_ref_secs: fidelity.pick(3.0 * 3600.0, 8.0 * 3600.0),
        ..project(fidelity)
    };
    let pool = PoolConfig {
        mean_uptime_secs: 2.0 * 3600.0,
        mean_downtime_secs: 20.0 * 3600.0,
        ..pool(fidelity)
    };
    let base = DeployConfig::vm(VmmProfile::vmplayer(), 300 << 20);
    let specs = [
        campaign_spec(
            "resume on original host",
            &project,
            &pool,
            base.clone(),
            horizon,
            fidelity,
        )
        .seed(0x317e),
        campaign_spec(
            "migrate checkpointed state",
            &project,
            &pool,
            base.with_migration(),
            horizon,
            fidelity,
        )
        .seed(0x317e),
    ];
    let results = engine.run_trials(&specs);

    let mut fig = FigureResult::new(
        "grid-migration",
        "Churn migration of checkpointed VM state: throughput with long tasks on flaky hosts",
        "work units validated within the horizon",
    );
    fig.push(
        FigureRow::new(&results[0].label, results[0].metric("validated_wus").mean).with_detail(
            format!("{:.0} migrations", results[0].metric("migrations").mean),
        ),
    );
    fig.push(
        FigureRow::new(&results[1].label, results[1].metric("validated_wus").mean).with_detail(
            format!(
                "{:.0} migrations of 300 MB state each",
                results[1].metric("migrations").mean
            ),
        ),
    );

    // Churn x policy sweep: scheduler-side rescue/evacuation paying the
    // modeled NIC transfer cost, against the checkpoint-only baseline.
    let sweep = engine.run_trials(&policy_sweep_specs(fidelity));
    for trial in &sweep {
        fig.push(
            FigureRow::new(&trial.label, trial.metric("validated_wus").mean).with_detail(format!(
                "inflation {:.2}, {:.1} rescues won of {:.1} migrations, {:.1} evacuations, {:.2} h transfer",
                trial.metric("makespan_inflation").mean,
                trial.metric("rescue_wins").mean,
                trial.metric("migrations").mean,
                trial.metric("evacuations").mean,
                trial.metric("transfer_secs").mean / 3600.0
            )),
        );
    }
    fig.note("tasks outlive host uptime spans; migration ships the VM checkpoint via the server");
    fig.note(
        "policy rows: 24 h reissue deadline; rescue re-homes laggards to idle faster hosts, \
         evacuation exports ahead of predicted owner arrival (transfers pay 100 Mbps NIC time)",
    );
    fig
}

/// Run `grid-migration` on the process-wide engine.
pub fn migration_comparison(fidelity: Fidelity) -> FigureResult {
    migration_comparison_with(Engine::global(), fidelity)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bigger_images_cost_throughput() {
        let fig = image_size_sweep(Fidelity::Fast);
        let tty = fig.value_of("ttylinux-ish (50 MB)").unwrap();
        let dvd = fig.value_of("DVD image (4 GB)").unwrap();
        assert!(tty >= dvd, "tty {tty} vs dvd {dvd}");
        assert!(tty > 0.0);
    }

    #[test]
    fn migration_helps_under_churn() {
        let fig = migration_comparison(Fidelity::Fast);
        let stay = fig.value_of("resume on original host").unwrap();
        let migrate = fig.value_of("migrate checkpointed state").unwrap();
        assert!(migrate >= stay, "migrate {migrate} vs stay {stay}");
    }

    #[test]
    fn rescue_policy_tames_stragglers_at_high_churn() {
        let specs = policy_sweep_specs(Fidelity::Fast);
        let results = Engine::global().run_trials(&specs);
        for t in &results {
            eprintln!(
                "{}: wus {:.1} inflation {:.2} migrations {:.1} evac {:.1} wins {:.1} xfer {:.2}h",
                t.label,
                t.metric("validated_wus").mean,
                t.metric("makespan_inflation").mean,
                t.metric("migrations").mean,
                t.metric("evacuations").mean,
                t.metric("rescue_wins").mean,
                t.metric("transfer_secs").mean / 3600.0
            );
        }
        let top = *POLICY_SWEEP_LEVELS.last().unwrap();
        let at = |name: &str| {
            results
                .iter()
                .find(|t| t.label == format!("churn {top:.1} {name}"))
                .unwrap_or_else(|| panic!("missing sweep row {name:?}"))
        };
        let off = at("checkpoint-only");
        let full = at("rescue+evacuate");
        assert_eq!(off.metric("rescue_wins").mean, 0.0);
        assert_eq!(off.metric("transfer_secs").mean, 0.0);
        assert!(
            full.metric("rescue_wins").mean > 0.0,
            "no rescue ever paid off at churn {top}"
        );
        assert!(full.metric("transfer_secs").mean > 0.0);
        let off_inflation = off.metric("makespan_inflation").mean;
        let full_inflation = full.metric("makespan_inflation").mean;
        assert!(
            full_inflation < off_inflation,
            "policy did not reduce makespan inflation: full {full_inflation} vs off {off_inflation}"
        );
    }

    #[test]
    fn vm_deployments_yield_less_than_native() {
        let fig = run(Fidelity::Fast);
        let native = fig.value_of("native").unwrap();
        assert!(native > 50.0, "native validated too little: {native}");
        for name in ["VMwarePlayer", "QEMU", "VirtualBox", "VirtualPC"] {
            let vm = fig.value_of(&format!("vm-{name}")).unwrap();
            assert!(vm < native, "vm-{name} {vm} vs native {native}");
            assert!(vm > 0.3 * native, "vm-{name} collapsed: {vm}");
        }
        // QEMU (worst CPU dilation) validates the least.
        let qemu = fig.value_of("vm-QEMU").unwrap();
        for name in ["VMwarePlayer", "VirtualBox", "VirtualPC"] {
            assert!(qemu <= fig.value_of(&format!("vm-{name}")).unwrap());
        }
    }
}
