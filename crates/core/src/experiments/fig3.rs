//! Figure 3 — Relative performance of IOBench on virtual machines.
//!
//! The disk benchmark (write+sync+read of files 128 KB..32 MB) runs
//! natively and inside each guest (guest filesystem -> virtual disk ->
//! host image file -> host disk). Paper: VmPlayer ~1.3x slower, VBox and
//! VirtualPC roughly 2x, QEMU nearly 5x.

use crate::engine::{Engine, Environment, KernelSpec, TrialSpec};
use crate::figures::{FigureResult, FigureRow};
use crate::testbed::{paper_profiles, Fidelity};
use vgrid_workloads::iobench::IoBenchConfig;

fn paper_value(name: &str) -> f64 {
    match name {
        "VMwarePlayer" => 1.3,
        "QEMU" => 4.9,
        "VirtualBox" => 2.0,
        "VirtualPC" => 2.1,
        _ => 1.0,
    }
}

fn bench_config(fidelity: Fidelity) -> IoBenchConfig {
    IoBenchConfig {
        min_size: 128 * 1024,
        max_size: fidelity.pick(4 * 1024 * 1024, 32 * 1024 * 1024),
        path_prefix: "/iobench".to_string(),
    }
}

/// Trial specs: the native baseline first, then one guest trial per
/// monitor. The native run and the guest runs pin the legacy seeds.
pub fn specs(fidelity: Fidelity) -> Vec<TrialSpec> {
    let kernel = || KernelSpec::IoBench(bench_config(fidelity));
    let mut specs =
        vec![TrialSpec::new("native", Environment::Native, kernel(), fidelity).seed(0xf1)];
    for profile in paper_profiles() {
        specs.push(
            TrialSpec::new(
                profile.name,
                Environment::Guest {
                    profile,
                    vnic: None,
                },
                kernel(),
                fidelity,
            )
            .seed(0xf2),
        );
    }
    specs
}

/// Run the experiment on the given engine.
pub fn run_with(engine: &Engine, fidelity: Fidelity) -> FigureResult {
    let results = engine.run_trials(&specs(fidelity));
    let native = results[0].value();

    let mut fig = FigureResult::new(
        "fig3",
        "Relative performance of IOBench on virtual machines",
        "slowdown vs native (native = 1.0)",
    );
    fig.push(
        FigureRow::new("native", 1.0)
            .with_paper(1.0)
            .with_detail(format!("native score {:.1} MB/s", native / 1e6)),
    );
    for result in &results[1..] {
        let guest = result.value();
        fig.push(
            FigureRow::new(&result.label, native / guest)
                .with_paper(paper_value(&result.label))
                .with_detail(format!("guest score {:.1} MB/s", guest / 1e6)),
        );
    }
    fig.note(format!(
        "file sizes 128 KB..{} MB doubling; write+fsync then cold read",
        bench_config(fidelity).max_size >> 20
    ));
    fig
}

/// Run the experiment on the process-wide engine.
pub fn run(fidelity: Fidelity) -> FigureResult {
    run_with(Engine::global(), fidelity)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_shape_matches_paper() {
        let fig = run(Fidelity::Fast);
        let v = |l: &str| fig.value_of(l).unwrap();
        // Ordering: VmPlayer fastest; QEMU extremely poor.
        assert!(v("VMwarePlayer") < v("VirtualBox"));
        assert!(v("VMwarePlayer") < v("VirtualPC"));
        assert!(v("QEMU") > v("VirtualBox"));
        assert!(v("QEMU") > v("VirtualPC"));
        // Magnitudes: disk I/O is hit much harder than CPU.
        assert!(
            v("VMwarePlayer") > 1.15 && v("VMwarePlayer") < 1.6,
            "vmplayer {}",
            v("VMwarePlayer")
        );
        assert!(v("VirtualBox") > 1.6, "vbox {}", v("VirtualBox"));
        assert!(v("QEMU") > 3.5, "qemu {}", v("QEMU"));
    }
}
