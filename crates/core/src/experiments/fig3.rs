//! Figure 3 — Relative performance of IOBench on virtual machines.
//!
//! The disk benchmark (write+sync+read of files 128 KB..32 MB) runs
//! natively and inside each guest (guest filesystem -> virtual disk ->
//! host image file -> host disk). Paper: VmPlayer ~1.3x slower, VBox and
//! VirtualPC roughly 2x, QEMU nearly 5x.

use crate::figures::{FigureResult, FigureRow};
use crate::testbed::{host_system, paper_profiles, Fidelity};
use vgrid_os::Priority;
use vgrid_simcore::{SimDuration, SimTime};
use vgrid_vmm::{GuestConfig, GuestVm, Vm, VmConfig, VmmProfile};
use vgrid_workloads::iobench::{IoBenchBody, IoBenchConfig, IoBenchReport};

fn paper_value(name: &str) -> f64 {
    match name {
        "VMwarePlayer" => 1.3,
        "QEMU" => 4.9,
        "VirtualBox" => 2.0,
        "VirtualPC" => 2.1,
        _ => 1.0,
    }
}

fn bench_config(fidelity: Fidelity) -> IoBenchConfig {
    IoBenchConfig {
        min_size: 128 * 1024,
        max_size: fidelity.pick(4 * 1024 * 1024, 32 * 1024 * 1024),
        path_prefix: "/iobench".to_string(),
    }
}

/// Native IOBench score (bytes/sec).
pub fn native_score(fidelity: Fidelity) -> IoBenchReport {
    let mut sys = host_system(0xf1);
    let (body, report) = IoBenchBody::new(bench_config(fidelity));
    sys.spawn("iobench", Priority::Normal, Box::new(body));
    assert!(
        sys.run_to_completion(SimTime::from_secs(3600)),
        "native iobench did not finish"
    );
    let r = report.borrow().clone();
    assert!(r.complete);
    r
}

/// Guest IOBench score for one profile.
pub fn guest_score(profile: &VmmProfile, fidelity: Fidelity) -> IoBenchReport {
    let mut sys = host_system(0xf2);
    let mut guest = GuestVm::new(GuestConfig::new(profile.clone()), sys.machine());
    let (body, report) = IoBenchBody::new(bench_config(fidelity));
    guest.spawn("iobench", Box::new(body));
    let vm = Vm::install(
        &mut sys,
        VmConfig::new(format!("vm-{}", profile.name), Priority::Normal),
        guest,
    );
    let deadline = SimTime::from_secs(3600);
    while !vm.halted() && sys.now() < deadline {
        let t = sys.now() + SimDuration::from_secs(1);
        sys.run_until(t);
    }
    assert!(vm.halted(), "guest iobench did not finish");
    let r = report.borrow().clone();
    assert!(r.complete);
    r
}

/// Run the experiment.
pub fn run(fidelity: Fidelity) -> FigureResult {
    let native = native_score(fidelity);
    let mut fig = FigureResult::new(
        "fig3",
        "Relative performance of IOBench on virtual machines",
        "slowdown vs native (native = 1.0)",
    );
    fig.push(
        FigureRow::new("native", 1.0)
            .with_paper(1.0)
            .with_detail(format!(
                "native score {:.1} MB/s",
                native.score_bps() / 1e6
            )),
    );
    for profile in paper_profiles() {
        let guest = guest_score(&profile, fidelity);
        let rel = native.score_bps() / guest.score_bps();
        fig.push(
            FigureRow::new(profile.name, rel)
                .with_paper(paper_value(profile.name))
                .with_detail(format!("guest score {:.1} MB/s", guest.score_bps() / 1e6)),
        );
    }
    fig.note(format!(
        "file sizes 128 KB..{} MB doubling; write+fsync then cold read",
        bench_config(fidelity).max_size >> 20
    ));
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_shape_matches_paper() {
        let fig = run(Fidelity::Fast);
        let v = |l: &str| fig.value_of(l).unwrap();
        // Ordering: VmPlayer fastest; QEMU extremely poor.
        assert!(v("VMwarePlayer") < v("VirtualBox"));
        assert!(v("VMwarePlayer") < v("VirtualPC"));
        assert!(v("QEMU") > v("VirtualBox"));
        assert!(v("QEMU") > v("VirtualPC"));
        // Magnitudes: disk I/O is hit much harder than CPU.
        assert!(
            v("VMwarePlayer") > 1.15 && v("VMwarePlayer") < 1.6,
            "vmplayer {}",
            v("VMwarePlayer")
        );
        assert!(v("VirtualBox") > 1.6, "vbox {}", v("VirtualBox"));
        assert!(v("QEMU") > 3.5, "qemu {}", v("QEMU"));
    }
}
