//! `grid-churn` — churn robustness of volunteer campaigns (extension
//! experiment).
//!
//! The paper's Section 1 argues VM sandboxes suit desktop grids partly
//! because suspend/checkpoint absorbs the reality of volunteer machines:
//! owners reclaim them, they reboot, sandboxes get killed. This
//! experiment quantifies that claim with the fault-injection layers of
//! `vgrid_grid::faults`: a churn-intensity sweep crossed with
//! checkpointed and checkpoint-free deployments, measuring goodput
//! (validated reference CPU seconds per wall second), wasted CPU and
//! reissue traffic.

use crate::engine::{Engine, Environment, KernelSpec, TrialSpec};
use crate::figures::{FigureResult, FigureRow};
use crate::testbed::Fidelity;
use vgrid_grid::{ChurnConfig, DeployConfig, PoolConfig, ProjectConfig};
use vgrid_simcore::{SimDuration, SimTime};
use vgrid_vmm::VmmProfile;

/// Churn-intensity levels swept (0 = the availability-only baseline).
const LEVELS: [f64; 4] = [0.0, 1.0, 2.0, 4.0];

fn project(fidelity: Fidelity) -> ProjectConfig {
    ProjectConfig {
        // More work than the horizon can finish: the metric is goodput
        // at the horizon, not the luck of the last straggler.
        workunits: 50_000,
        // Long tasks: an interruption without a checkpoint loses hours.
        wu_ref_secs: fidelity.pick(2.0 * 3600.0, 4.0 * 3600.0),
        ..Default::default()
    }
}

fn pool(fidelity: Fidelity) -> PoolConfig {
    PoolConfig {
        volunteers: fidelity.pick(40, 120),
        // Keep RAM out of the way: this experiment isolates churn.
        ram_range: (1 << 30, 2 << 30),
        ..Default::default()
    }
}

fn spec(
    label: String,
    project: &ProjectConfig,
    pool: &PoolConfig,
    deploy: DeployConfig,
    churn: ChurnConfig,
    horizon: SimTime,
    fidelity: Fidelity,
) -> TrialSpec {
    TrialSpec::new(
        label,
        Environment::Native,
        KernelSpec::Campaign {
            project: project.clone(),
            pool: pool.clone(),
            deploy,
            churn,
            horizon,
        },
        fidelity,
    )
    .seed(0x2e99)
    .repetitions(3)
}

/// Run the churn sweep on the given engine.
pub fn run_with(engine: &Engine, fidelity: Fidelity) -> FigureResult {
    let horizon = SimTime::from_secs(fidelity.pick(7, 21) * 24 * 3600);
    let project = project(fidelity);
    let pool = pool(fidelity);
    let vm = DeployConfig::vm(VmmProfile::vmplayer(), 300 << 20);
    let mut vm_no_ckpt = vm.clone();
    vm_no_ckpt.checkpoint_interval = SimDuration::ZERO;
    let deployments = [
        ("native", DeployConfig::native()),
        ("vm", vm),
        ("vm no-ckpt", vm_no_ckpt),
    ];

    let mut specs = Vec::new();
    for level in LEVELS {
        for (tag, deploy) in &deployments {
            specs.push(spec(
                format!("{tag} churn {level:.0}"),
                &project,
                &pool,
                deploy.clone(),
                ChurnConfig::intensity(level),
                horizon,
                fidelity,
            ));
        }
    }
    let results = engine.run_trials(&specs);

    let mut fig = FigureResult::new(
        "grid-churn",
        "Volunteer churn vs checkpoint robustness: goodput under fault injection",
        "goodput: validated reference CPU seconds per wall second (higher is better)",
    );
    for trial in &results {
        fig.push(
            FigureRow::new(&trial.label, trial.metric("goodput").mean).with_detail(format!(
                "{:.0} wus, {:.0} h CPU wasted, {:.0} preemptions, {:.0} kills",
                trial.metric("validated_wus").mean,
                trial.metric("wasted_cpu_secs").mean / 3600.0,
                trial.metric("owner_preemptions").mean,
                trial.metric("vm_kills").mean
            )),
        );
    }
    fig.note(format!(
        "{} volunteers, {:.1} h tasks; churn level scales owner sessions, sandbox kills \
         and Weibull-shaped uptime spans together",
        pool.volunteers,
        project.wu_ref_secs / 3600.0
    ));
    fig.note("'vm no-ckpt' disables checkpointing: every interruption restarts the task");
    fig
}

/// Run the churn sweep on the process-wide engine.
pub fn run(fidelity: Fidelity) -> FigureResult {
    run_with(Engine::global(), fidelity)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn goodput_degrades_monotonically_with_churn() {
        let fig = run(Fidelity::Fast);
        for tag in ["native", "vm"] {
            let mut prev = f64::INFINITY;
            for level in LEVELS {
                let v = fig
                    .value_of(&format!("{tag} churn {level:.0}"))
                    .expect("row exists");
                assert!(
                    v < prev,
                    "{tag}: goodput must fall as churn rises (level {level}: {v} vs {prev})"
                );
                prev = v;
            }
        }
    }

    #[test]
    fn checkpointing_retains_goodput_under_high_churn() {
        let fig = run(Fidelity::Fast);
        let ckpt = fig.value_of("vm churn 4").expect("row exists");
        let raw = fig.value_of("vm no-ckpt churn 4").expect("row exists");
        assert!(
            ckpt >= 2.0 * raw,
            "checkpointed VM must retain >= 2x goodput: {ckpt} vs {raw}"
        );
        // Without churn, skipping checkpoints is (weakly) cheaper.
        let base_ckpt = fig.value_of("vm churn 0").expect("row exists");
        assert!(
            base_ckpt > ckpt,
            "churn must cost goodput: {base_ckpt} vs {ckpt}"
        );
    }
}
