//! Figures 5 and 6 (and the omitted FP plot) — host-side NBench overhead
//! while a VM computes an Einstein@home task at 100 % virtual CPU.
//!
//! NBench runs on the host; the VM runs at `Normal` and at `Idle`
//! priority (plotted side by side in the paper). Overhead is relative to
//! an NBench run with no VM. Paper: MEM index worst but under 5 %, INT
//! ~2 %, FP ~0 %; all four monitors similar; priority barely matters
//! (the dual core absorbs the VM).

use crate::figures::{FigureResult, FigureRow};
use crate::testbed::{host_system, install_einstein_vm, paper_profiles, Fidelity};
use vgrid_os::Priority;
use vgrid_simcore::{SimDuration, SimTime};
use vgrid_vmm::VmmProfile;
use vgrid_workloads::nbench::{IndexGroup, NBenchBody, NBenchReport, NBenchSuite};

/// Run NBench on the host, optionally next to an Einstein VM.
pub fn nbench_run(
    vm: Option<(&VmmProfile, Priority)>,
    fidelity: Fidelity,
    suite: &NBenchSuite,
) -> NBenchReport {
    let mut sys = host_system(0x56);
    if let Some((profile, prio)) = vm {
        install_einstein_vm(&mut sys, profile, prio, fidelity);
        // Let the VM reach steady state before benchmarking.
        sys.run_until(SimTime::from_millis(200));
    }
    let per_test = fidelity.pick(
        SimDuration::from_millis(30),
        SimDuration::from_millis(500),
    );
    let (body, report) = NBenchBody::new(suite.clone(), per_test);
    sys.spawn("nbench", Priority::Normal, Box::new(body));
    let deadline = SimTime::from_secs(3600);
    while !report.borrow().complete && sys.now() < deadline {
        let t = sys.now() + SimDuration::from_secs(1);
        sys.run_until(t);
    }
    let r = report.borrow().clone();
    assert!(r.complete, "nbench did not finish");
    r
}

/// Percentage overhead of `report` vs `baseline` for one index group.
fn overhead_pct(report: &NBenchReport, baseline: &NBenchReport, group: IndexGroup) -> f64 {
    (1.0 - report.index_vs(baseline, group)) * 100.0
}

/// Run figures 5 (MEM), 6 (INT) and the FP companion; returns
/// (fig5, fig6, fig_fp).
pub fn run(fidelity: Fidelity) -> (FigureResult, FigureResult, FigureResult) {
    let suite = match fidelity {
        Fidelity::Fast => NBenchSuite::small(),
        Fidelity::Paper => NBenchSuite::standard(),
    };
    let baseline = nbench_run(None, fidelity, &suite);

    let mut fig5 = FigureResult::new(
        "fig5",
        "Relative performance (MEM index) on the host with an active VM",
        "% overhead vs no-VM run (smaller is better)",
    );
    let mut fig6 = FigureResult::new(
        "fig6",
        "Relative performance (INT index) on the host with an active VM",
        "% overhead vs no-VM run (smaller is better)",
    );
    let mut figfp = FigureResult::new(
        "figfp",
        "Relative performance (FP index) on the host with an active VM (plot omitted in the paper)",
        "% overhead vs no-VM run (smaller is better)",
    );
    for profile in paper_profiles() {
        for (prio, tag) in [(Priority::Normal, "normal"), (Priority::Idle, "idle")] {
            let rep = nbench_run(Some((&profile, prio)), fidelity, &suite);
            let label = format!("{}-{}", profile.name, tag);
            fig5.push(
                FigureRow::new(&label, overhead_pct(&rep, &baseline, IndexGroup::Memory))
                    .with_paper(3.5),
            );
            fig6.push(
                FigureRow::new(&label, overhead_pct(&rep, &baseline, IndexGroup::Integer))
                    .with_paper(2.0),
            );
            figfp.push(
                FigureRow::new(&label, overhead_pct(&rep, &baseline, IndexGroup::Float))
                    .with_paper(0.0),
            );
        }
    }
    let note = "NBench on host (Normal), VM running Einstein@home at 100% vCPU";
    fig5.note(note);
    fig6.note(note);
    figfp.note(note);
    fig5.note("paper: MEM overhead worst case under 5%");
    fig6.note("paper: INT overhead averages ~2%");
    figfp.note("paper: practically no FP overhead (plot omitted to conserve space)");
    (fig5, fig6, figfp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig56_shape_matches_paper() {
        let (fig5, fig6, figfp) = run(Fidelity::Fast);
        for row in &fig5.rows {
            assert!(
                row.value < 8.0,
                "MEM overhead {} = {}",
                row.label,
                row.value
            );
            assert!(row.value > -2.0, "{} {}", row.label, row.value);
        }
        for row in &fig6.rows {
            assert!(
                row.value < 5.0,
                "INT overhead {} = {}",
                row.label,
                row.value
            );
        }
        for row in &figfp.rows {
            assert!(
                row.value.abs() < 2.0,
                "FP overhead {} = {}",
                row.label,
                row.value
            );
        }
        // MEM is hit hardest on average (the shared-L2 mechanism).
        let avg = |f: &FigureResult| {
            f.rows.iter().map(|r| r.value).sum::<f64>() / f.rows.len() as f64
        };
        assert!(avg(&fig5) >= avg(&figfp));
        // Priority barely matters: normal vs idle within 3 points.
        for f in [&fig5, &fig6] {
            for profile in ["VMwarePlayer", "QEMU", "VirtualBox", "VirtualPC"] {
                let n = f.value_of(&format!("{profile}-normal")).unwrap();
                let i = f.value_of(&format!("{profile}-idle")).unwrap();
                assert!((n - i).abs() < 3.0, "{profile}: normal {n} vs idle {i}");
            }
        }
    }
}
