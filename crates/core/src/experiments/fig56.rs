//! Figures 5 and 6 (and the omitted FP plot) — host-side NBench overhead
//! while a VM computes an Einstein@home task at 100 % virtual CPU.
//!
//! NBench runs on the host; the VM runs at `Normal` and at `Idle`
//! priority (plotted side by side in the paper). Overhead is relative to
//! an NBench run with no VM. Paper: MEM index worst but under 5 %, INT
//! ~2 %, FP ~0 %; all four monitors similar; priority barely matters
//! (the dual core absorbs the VM).

use crate::engine::{Engine, Environment, KernelSpec, TrialSpec};
use crate::figures::{FigureResult, FigureRow};
use crate::testbed::{paper_profiles, Fidelity};
use vgrid_os::Priority;
use vgrid_simcore::SimDuration;
use vgrid_vmm::VmmProfile;
use vgrid_workloads::nbench::NBenchSuite;

/// The NBench suite used at this fidelity.
pub fn suite(fidelity: Fidelity) -> NBenchSuite {
    match fidelity {
        Fidelity::Fast => NBenchSuite::small(),
        Fidelity::Paper => NBenchSuite::standard(),
    }
}

/// One host-side NBench trial spec, optionally beside an Einstein VM.
/// Shared with the ablations so identical runs (e.g. the no-VM
/// baseline) hit the engine cache instead of re-simulating.
pub fn nbench_spec(
    label: impl Into<String>,
    vm: Option<(VmmProfile, Priority)>,
    fidelity: Fidelity,
) -> TrialSpec {
    let per_test = fidelity.pick(SimDuration::from_millis(30), SimDuration::from_millis(500));
    let env = match vm {
        None => Environment::Native,
        Some((profile, priority)) => Environment::HostUnderVm { profile, priority },
    };
    TrialSpec::new(
        label,
        env,
        KernelSpec::NBench {
            suite: suite(fidelity),
            per_test,
        },
        fidelity,
    )
    .seed(0x56)
}

/// Trial specs: the no-VM baseline first, then each monitor at Normal
/// and Idle priority.
pub fn specs(fidelity: Fidelity) -> Vec<TrialSpec> {
    let mut specs = vec![nbench_spec("no VM", None, fidelity)];
    for profile in paper_profiles() {
        for (prio, tag) in [(Priority::Normal, "normal"), (Priority::Idle, "idle")] {
            specs.push(nbench_spec(
                format!("{}-{tag}", profile.name),
                Some((profile.clone(), prio)),
                fidelity,
            ));
        }
    }
    specs
}

/// Percentage overhead of `trial` vs `baseline` for one index metric.
fn overhead_pct(
    trial: &crate::engine::TrialResult,
    baseline: &crate::engine::TrialResult,
    metric: &str,
) -> f64 {
    (1.0 - trial.metric(metric).mean / baseline.metric(metric).mean) * 100.0
}

/// Run figures 5 (MEM), 6 (INT) and the FP companion on the given
/// engine; returns (fig5, fig6, fig_fp).
pub fn run_with(engine: &Engine, fidelity: Fidelity) -> (FigureResult, FigureResult, FigureResult) {
    let results = engine.run_trials(&specs(fidelity));
    let baseline = &results[0];

    let mut fig5 = FigureResult::new(
        "fig5",
        "Relative performance (MEM index) on the host with an active VM",
        "% overhead vs no-VM run (smaller is better)",
    );
    let mut fig6 = FigureResult::new(
        "fig6",
        "Relative performance (INT index) on the host with an active VM",
        "% overhead vs no-VM run (smaller is better)",
    );
    let mut figfp = FigureResult::new(
        "figfp",
        "Relative performance (FP index) on the host with an active VM (plot omitted in the paper)",
        "% overhead vs no-VM run (smaller is better)",
    );
    for trial in &results[1..] {
        fig5.push(
            FigureRow::new(&trial.label, overhead_pct(trial, baseline, "mem_index"))
                .with_paper(3.5),
        );
        fig6.push(
            FigureRow::new(&trial.label, overhead_pct(trial, baseline, "int_index"))
                .with_paper(2.0),
        );
        figfp.push(
            FigureRow::new(&trial.label, overhead_pct(trial, baseline, "fp_index")).with_paper(0.0),
        );
    }
    let note = "NBench on host (Normal), VM running Einstein@home at 100% vCPU";
    fig5.note(note);
    fig6.note(note);
    figfp.note(note);
    fig5.note("paper: MEM overhead worst case under 5%");
    fig6.note("paper: INT overhead averages ~2%");
    figfp.note("paper: practically no FP overhead (plot omitted to conserve space)");
    (fig5, fig6, figfp)
}

/// Run the experiment on the process-wide engine.
pub fn run(fidelity: Fidelity) -> (FigureResult, FigureResult, FigureResult) {
    run_with(Engine::global(), fidelity)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig56_shape_matches_paper() {
        let (fig5, fig6, figfp) = run(Fidelity::Fast);
        for row in &fig5.rows {
            assert!(
                row.value < 8.0,
                "MEM overhead {} = {}",
                row.label,
                row.value
            );
            assert!(row.value > -2.0, "{} {}", row.label, row.value);
        }
        for row in &fig6.rows {
            assert!(
                row.value < 5.0,
                "INT overhead {} = {}",
                row.label,
                row.value
            );
        }
        for row in &figfp.rows {
            assert!(
                row.value.abs() < 2.0,
                "FP overhead {} = {}",
                row.label,
                row.value
            );
        }
        // MEM is hit hardest on average (the shared-L2 mechanism).
        let avg =
            |f: &FigureResult| f.rows.iter().map(|r| r.value).sum::<f64>() / f.rows.len() as f64; // simlint: allow(float-fold-order) -- test statistic over a fixed row order
        assert!(avg(&fig5) >= avg(&figfp));
        // Priority barely matters: normal vs idle within 3 points.
        for f in [&fig5, &fig6] {
            for profile in ["VMwarePlayer", "QEMU", "VirtualBox", "VirtualPC"] {
                let n = f.value_of(&format!("{profile}-normal")).unwrap();
                let i = f.value_of(&format!("{profile}-idle")).unwrap();
                assert!((n - i).abs() < 3.0, "{profile}: normal {n} vs idle {i}");
            }
        }
    }
}
