//! Ablation experiments for the design claims the paper makes in prose.
//!
//! * `abl-prio` — Section 4.2.2 claims the VM's priority class barely
//!   matters on the dual core: sweep every class.
//! * `abl-cores` — "the marginal overhead appears to be a consequence of
//!   the dual core processor": rerun the NBench experiment on a
//!   single-core variant of the testbed.
//! * `abl-l2` — "the slight overhead in the MEM index might be due to
//!   ... the 4 MB level 2 cache ... shared between the two cores": rerun
//!   with private per-core L2.
//! * `abl-bt` — the paper's closing observation: "the higher the
//!   performance [of a VMM], the higher is the overhead [on the host]".
//!
//! Every ablation is phrased as engine trial specs; where a spec
//! coincides with one of the paper figures (the no-VM NBench baseline,
//! the 2-thread host 7z runs) the engine cache reuses the figure's
//! simulation instead of repeating it.

use crate::engine::{Engine, Environment, KernelSpec, TrialSpec};
use crate::experiments::{fig56, fig78};
use crate::figures::{FigureResult, FigureRow};
use crate::testbed::{paper_profiles, Fidelity};
use vgrid_machine::MachineSpec;
use vgrid_os::Priority;
use vgrid_simcore::SimDuration;
use vgrid_vmm::VmmProfile;
use vgrid_workloads::sevenz::{SevenZConfig, SevenZKernel};

/// MEM-index overhead (%) of `trial` vs `baseline`.
fn mem_overhead_pct(
    trial: &crate::engine::TrialResult,
    baseline: &crate::engine::TrialResult,
) -> f64 {
    (1.0 - trial.metric("mem_index").mean / baseline.metric("mem_index").mean) * 100.0
}

/// `abl-prio`: MEM-index overhead for every VM priority class
/// (VmPlayer guest).
pub fn priority_sweep_with(engine: &Engine, fidelity: Fidelity) -> FigureResult {
    let classes = [
        (Priority::Idle, "Idle"),
        (Priority::BelowNormal, "BelowNormal"),
        (Priority::Normal, "Normal"),
        (Priority::AboveNormal, "AboveNormal"),
        (Priority::High, "High"),
    ];
    let mut specs = vec![fig56::nbench_spec("no VM", None, fidelity)];
    for (prio, label) in classes {
        specs.push(fig56::nbench_spec(
            label,
            Some((VmmProfile::vmplayer(), prio)),
            fidelity,
        ));
    }
    let results = engine.run_trials(&specs);
    let baseline = &results[0];

    let mut fig = FigureResult::new(
        "abl-prio",
        "MEM-index overhead vs VM priority class (VmPlayer)",
        "% overhead vs no-VM run",
    );
    for trial in &results[1..] {
        fig.push(FigureRow::new(
            &trial.label,
            mem_overhead_pct(trial, baseline),
        ));
    }
    fig.note(
        "the dual core absorbs the VM at every class except when the vCPU outranks the benchmark",
    );
    fig
}

/// Run `abl-prio` on the process-wide engine.
pub fn priority_sweep(fidelity: Fidelity) -> FigureResult {
    priority_sweep_with(Engine::global(), fidelity)
}

/// NBench MEM overhead on an arbitrary machine spec, with and without an
/// einstein VM (helper for the machine ablations).
fn mem_overhead_on(engine: &Engine, machine: MachineSpec, fidelity: Fidelity) -> f64 {
    let spec = |label: &str, with_vm: bool| {
        let base = fig56::nbench_spec(
            label,
            with_vm.then(|| (VmmProfile::vmplayer(), Priority::Idle)),
            fidelity,
        );
        base.seed(0xab1).on_machine(machine.clone())
    };
    let results = engine.run_trials(&[spec("no VM", false), spec("with VM", true)]);
    mem_overhead_pct(&results[1], &results[0])
}

/// `abl-cores`: the dual-core claim, counterfactually.
pub fn single_core_with(engine: &Engine, fidelity: Fidelity) -> FigureResult {
    let dual = mem_overhead_on(engine, MachineSpec::core2_duo_6600(), fidelity);
    let solo = mem_overhead_on(engine, MachineSpec::core2_duo_6600().core2_solo(), fidelity);
    let mut fig = FigureResult::new(
        "abl-cores",
        "MEM-index overhead: dual-core testbed vs single-core counterfactual",
        "% overhead vs no-VM run on the same machine",
    );
    fig.push(FigureRow::new("dual-core (paper testbed)", dual));
    fig.push(FigureRow::new("single-core (counterfactual)", solo));
    fig.note("supports Section 4.2.2: without the second core the VM's service load lands on the benchmark");
    fig
}

/// Run `abl-cores` on the process-wide engine.
pub fn single_core(fidelity: Fidelity) -> FigureResult {
    single_core_with(Engine::global(), fidelity)
}

/// `abl-l2`: the shared-L2-collision hypothesis.
pub fn shared_l2_with(engine: &Engine, fidelity: Fidelity) -> FigureResult {
    let shared = mem_overhead_on(engine, MachineSpec::core2_duo_6600(), fidelity);
    let private = mem_overhead_on(
        engine,
        MachineSpec::core2_duo_6600().with_private_l2(),
        fidelity,
    );
    let mut fig = FigureResult::new(
        "abl-l2",
        "MEM-index overhead: shared 4 MB L2 vs private 2x2 MB L2",
        "% overhead vs no-VM run on the same machine",
    );
    fig.push(FigureRow::new("shared L2 (paper testbed)", shared));
    fig.push(FigureRow::new("private L2 (counterfactual)", private));
    fig.note("supports Section 4.2.2: cache collisions over the shared L2 drive the residual MEM overhead");
    fig
}

/// Run `abl-l2` on the process-wide engine.
pub fn shared_l2(fidelity: Fidelity) -> FigureResult {
    shared_l2_with(Engine::global(), fidelity)
}

/// `abl-bt`: guest speed vs host intrusiveness across monitors.
pub fn bt_tradeoff_with(engine: &Engine, fidelity: Fidelity) -> FigureResult {
    let cfg = SevenZConfig {
        threads: 1,
        corpus_len: fidelity.pick(48 * 1024, 256 * 1024),
        depth: fidelity.pick(8, 32),
        ..Default::default()
    };
    let kernel = SevenZKernel::characterize(&cfg);
    let iter_secs = kernel.ops_per_iter as f64 / 6.0e9;
    let iters = (fidelity.pick(0.3, 1.0) / iter_secs).ceil() as u64;
    let loop_kernel = || KernelSpec::OpLoop {
        block: kernel.block.clone(),
        iters,
    };

    // Guest slowdown trials plus the matching host-intrusiveness trials
    // (the latter are exactly Figure 7's 2-thread runs, so they come
    // from the cache when the figures already ran).
    let mut specs =
        vec![TrialSpec::new("native", Environment::Native, loop_kernel(), fidelity).seed(7)];
    for profile in paper_profiles() {
        specs.push(
            TrialSpec::new(
                profile.name,
                Environment::Guest {
                    profile: profile.clone(),
                    vnic: None,
                },
                loop_kernel(),
                fidelity,
            )
            .seed(7),
        );
        specs.push(fig78::sevenz_spec(
            format!("host-7z-{}", profile.name),
            2,
            Some(profile),
            fidelity,
        ));
    }
    let results = engine.run_trials(&specs);
    let native = results[0].value();

    let mut fig = FigureResult::new(
        "abl-bt",
        "Guest speed vs host intrusiveness (the paper's closing observation)",
        "guest 7z slowdown (value) vs host 2-thread %CPU (detail)",
    );
    for pair in results[1..].chunks(2) {
        let (guest, host) = (&pair[0], &pair[1]);
        fig.push(
            FigureRow::new(&guest.label, guest.value() / native).with_detail(format!(
                "host 7z gets {:.0}% CPU while this VM runs",
                host.metric("cpu_pct").mean
            )),
        );
    }
    fig.note("the fastest monitor (VmPlayer) is also the most intrusive on the host");
    fig
}

/// Run `abl-bt` on the process-wide engine.
pub fn bt_tradeoff(fidelity: Fidelity) -> FigureResult {
    bt_tradeoff_with(Engine::global(), fidelity)
}

/// `abl-quad`: the paper's forward-looking claim, tested — "3 and 4 GB
/// are becoming standard on new machines" and more cores make VM
/// hosting even cheaper. Rerun the Figure 7 headline (host 7z, 2
/// threads, VmPlayer VM at idle) on a quad-core testbed.
pub fn quad_core_with(engine: &Engine, fidelity: Fidelity) -> FigureResult {
    let cfg = SevenZConfig {
        threads: 2,
        corpus_len: fidelity.pick(32 * 1024, 128 * 1024),
        depth: fidelity.pick(8, 16),
        duration: fidelity.pick(SimDuration::from_secs(2), SimDuration::from_secs(8)),
        ..Default::default()
    };
    let spec = |label: &str, machine: &MachineSpec, with_vm: bool| {
        let env = if with_vm {
            Environment::HostUnderVm {
                profile: VmmProfile::vmplayer(),
                priority: Priority::Idle,
            }
        } else {
            Environment::Native
        };
        TrialSpec::new(label, env, KernelSpec::SevenZHost(cfg.clone()), fidelity)
            .seed(0xab4)
            .on_machine(machine.clone())
    };
    let machines = [
        ("dual-core (paper)", MachineSpec::core2_duo_6600()),
        (
            "quad-core (counterfactual)",
            MachineSpec::core2_duo_6600().core2_quad(),
        ),
    ];
    let specs: Vec<TrialSpec> = machines
        .iter()
        .flat_map(|(label, machine)| {
            [
                spec(&format!("{label} base"), machine, false),
                spec(label, machine, true),
            ]
        })
        .collect();
    let results = engine.run_trials(&specs);

    let mut fig = FigureResult::new(
        "abl-quad",
        "Figure 7's worst case (2-thread 7z vs VmPlayer) on a quad-core testbed",
        "% CPU available to 7z",
    );
    for pair in results.chunks(2) {
        let (base, vm) = (&pair[0], &pair[1]);
        fig.push(
            FigureRow::new(&vm.label, vm.metric("cpu_pct").mean).with_detail(format!(
                "{:.0}% without the VM; MIPS ratio {:.2}",
                base.metric("cpu_pct").mean,
                vm.metric("mips").mean / base.metric("mips").mean
            )),
        );
    }
    fig.note("with spare cores the monitor's service load stops competing with host work");
    fig
}

/// Run `abl-quad` on the process-wide engine.
pub fn quad_core(fidelity: Fidelity) -> FigureResult {
    quad_core_with(Engine::global(), fidelity)
}

/// `abl-lzma`: the compressor's own speed/ratio trade-off (7z's
/// match-finder depth knob), run through the simulated native machine —
/// a sanity anchor showing the benchmark kernel behaves like the tool it
/// stands in for.
pub fn lzma_depth_sweep_with(engine: &Engine, fidelity: Fidelity) -> FigureResult {
    use vgrid_workloads::corpus;
    use vgrid_workloads::counter::OpCounter;
    use vgrid_workloads::lzma::{compress, LzmaConfig};
    let len = fidelity.pick(48 * 1024, 256 * 1024);
    let data = corpus::seven_zip_bench(len, 0x12a);
    let depths = [1u32, 4, 16, 64, 256];

    let mut ratios = Vec::new();
    let mut specs = Vec::new();
    for &depth in &depths {
        let mut ops = OpCounter::new();
        let packed = compress(
            &data,
            LzmaConfig {
                depth,
                ..Default::default()
            },
            &mut ops,
        );
        ratios.push(packed.len() as f64 / (len as f64 / 1024.0));
        let block = vgrid_machine::ops::OpBlock {
            label: format!("lzma-d{depth}"),
            counts: ops.to_counts(),
            working_set: (len * 9) as u64,
            locality: 0.9,
        };
        specs.push(
            TrialSpec::new(
                format!("depth {depth}"),
                Environment::Native,
                KernelSpec::OpLoop { block, iters: 1 },
                fidelity,
            )
            .seed(1),
        );
    }
    let results = engine.run_trials(&specs);

    let mut fig = FigureResult::new(
        "abl-lzma",
        "LZMA match-finder depth: compression ratio vs simulated compression time",
        "output bytes per input KB (lower = better ratio)",
    );
    for (trial, ratio) in results.iter().zip(&ratios) {
        fig.push(FigureRow::new(&trial.label, *ratio).with_detail(format!(
            "{:.1} ms simulated compression time",
            trial.value() * 1e3
        )));
    }
    fig.note("deeper chain search buys ratio with time — 7z's -mx knob in miniature");
    fig
}

/// Run `abl-lzma` on the process-wide engine.
pub fn lzma_depth_sweep(fidelity: Fidelity) -> FigureResult {
    lzma_depth_sweep_with(Engine::global(), fidelity)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_rarely_matters_below_benchmark_class() {
        let fig = priority_sweep(Fidelity::Fast);
        let v = |l: &str| fig.value_of(l).unwrap();
        // Idle through Normal: dual core absorbs the VM.
        for label in ["Idle", "BelowNormal", "Normal"] {
            assert!(v(label) < 8.0, "{label}: {}", v(label));
        }
        // A High-priority vCPU outranks the benchmark and must hurt more
        // than the Idle case.
        assert!(
            v("High") > v("Idle"),
            "High {} vs Idle {}",
            v("High"),
            v("Idle")
        );
    }

    #[test]
    fn single_core_makes_vm_heavy() {
        let fig = single_core(Fidelity::Fast);
        let dual = fig.value_of("dual-core (paper testbed)").unwrap();
        let solo = fig.value_of("single-core (counterfactual)").unwrap();
        assert!(solo > dual + 10.0, "solo {solo} vs dual {dual}");
        assert!(solo > 25.0, "solo {solo}");
    }

    #[test]
    fn private_l2_reduces_mem_overhead() {
        let fig = shared_l2(Fidelity::Fast);
        let shared = fig.value_of("shared L2 (paper testbed)").unwrap();
        let private = fig.value_of("private L2 (counterfactual)").unwrap();
        assert!(
            private <= shared + 0.5,
            "private {private} vs shared {shared}"
        );
    }

    #[test]
    fn quad_core_absorbs_the_most_intrusive_monitor() {
        let fig = quad_core(Fidelity::Fast);
        let dual = fig.value_of("dual-core (paper)").unwrap();
        let quad = fig.value_of("quad-core (counterfactual)").unwrap();
        // On the dual core VmPlayer squeezes 7z to ~120 %; on a quad the
        // VM has its own cores and 7z keeps nearly its no-VM share.
        assert!(dual < 135.0, "dual {dual}");
        assert!(quad > 160.0, "quad {quad}");
        assert!(quad > dual + 25.0);
    }

    #[test]
    fn lzma_depth_trades_time_for_ratio() {
        let fig = lzma_depth_sweep(Fidelity::Fast);
        let ratio = |d: &str| fig.value_of(d).unwrap();
        // Ratio improves (bytes/KB falls) monotonically-ish with depth.
        assert!(ratio("depth 1") >= ratio("depth 16"));
        assert!(ratio("depth 16") >= ratio("depth 256"));
        assert!(ratio("depth 256") > 0.0);
    }

    #[test]
    fn fastest_guest_is_most_intrusive() {
        let fig = bt_tradeoff(Fidelity::Fast);
        // VmPlayer has the lowest slowdown...
        let vmp = fig.value_of("VMwarePlayer").unwrap();
        for other in ["QEMU", "VirtualBox", "VirtualPC"] {
            assert!(vmp < fig.value_of(other).unwrap());
        }
        // ...and its detail shows the lowest host CPU (asserted in fig7's
        // own test; here we just check the row exists with a detail).
        assert!(fig.rows.iter().all(|r| r.detail.is_some()));
    }
}
