//! Ablation experiments for the design claims the paper makes in prose.
//!
//! * `abl-prio` — Section 4.2.2 claims the VM's priority class barely
//!   matters on the dual core: sweep every class.
//! * `abl-cores` — "the marginal overhead appears to be a consequence of
//!   the dual core processor": rerun the NBench experiment on a
//!   single-core variant of the testbed.
//! * `abl-l2` — "the slight overhead in the MEM index might be due to
//!   ... the 4 MB level 2 cache ... shared between the two cores": rerun
//!   with private per-core L2.
//! * `abl-bt` — the paper's closing observation: "the higher the
//!   performance [of a VMM], the higher is the overhead [on the host]".

use crate::experiments::fig56::nbench_run;
use crate::experiments::fig78::sevenz_on_host;
use crate::figures::{FigureResult, FigureRow};
use crate::testbed::{
    host_system, install_einstein_vm, paper_profiles, run_guest_loop, run_native_loop, Fidelity,
};
use vgrid_machine::MachineSpec;
use vgrid_os::{Priority, System, SystemConfig};
use vgrid_simcore::{SimDuration, SimTime};
use vgrid_vmm::VmmProfile;
use vgrid_workloads::nbench::{IndexGroup, NBenchBody, NBenchSuite};
use vgrid_workloads::sevenz::{SevenZConfig, SevenZKernel};

/// `abl-prio`: MEM-index overhead for every VM priority class
/// (VmPlayer guest).
pub fn priority_sweep(fidelity: Fidelity) -> FigureResult {
    let suite = NBenchSuite::small();
    let baseline = nbench_run(None, fidelity, &suite);
    let profile = VmmProfile::vmplayer();
    let mut fig = FigureResult::new(
        "abl-prio",
        "MEM-index overhead vs VM priority class (VmPlayer)",
        "% overhead vs no-VM run",
    );
    for (prio, label) in [
        (Priority::Idle, "Idle"),
        (Priority::BelowNormal, "BelowNormal"),
        (Priority::Normal, "Normal"),
        (Priority::AboveNormal, "AboveNormal"),
        (Priority::High, "High"),
    ] {
        let rep = nbench_run(Some((&profile, prio)), fidelity, &suite);
        let overhead = (1.0 - rep.index_vs(&baseline, IndexGroup::Memory)) * 100.0;
        fig.push(FigureRow::new(label, overhead));
    }
    fig.note("the dual core absorbs the VM at every class except when the vCPU outranks the benchmark");
    fig
}

/// NBench MEM overhead on an arbitrary machine spec, with and without an
/// einstein VM (helper for the machine ablations).
fn mem_overhead_on(machine: MachineSpec, fidelity: Fidelity) -> f64 {
    let suite = match fidelity {
        Fidelity::Fast => NBenchSuite::small(),
        Fidelity::Paper => NBenchSuite::standard(),
    };
    let mk = |with_vm: bool| {
        let mut sys = System::new(SystemConfig {
            machine: machine.clone(),
            ..SystemConfig::testbed(0xab1)
        });
        if with_vm {
            install_einstein_vm(&mut sys, &VmmProfile::vmplayer(), Priority::Idle, fidelity);
            sys.run_until(SimTime::from_millis(200));
        }
        let per_test = fidelity.pick(
            SimDuration::from_millis(30),
            SimDuration::from_millis(500),
        );
        let (body, report) = NBenchBody::new(suite.clone(), per_test);
        sys.spawn("nbench", Priority::Normal, Box::new(body));
        let deadline = SimTime::from_secs(3600);
        while !report.borrow().complete && sys.now() < deadline {
            let t = sys.now() + SimDuration::from_secs(1);
            sys.run_until(t);
        }
        let r = report.borrow().clone();
        assert!(r.complete);
        r
    };
    let base = mk(false);
    let with_vm = mk(true);
    (1.0 - with_vm.index_vs(&base, IndexGroup::Memory)) * 100.0
}

/// `abl-cores`: the dual-core claim, counterfactually.
pub fn single_core(fidelity: Fidelity) -> FigureResult {
    let dual = mem_overhead_on(MachineSpec::core2_duo_6600(), fidelity);
    let solo = mem_overhead_on(MachineSpec::core2_duo_6600().core2_solo(), fidelity);
    let mut fig = FigureResult::new(
        "abl-cores",
        "MEM-index overhead: dual-core testbed vs single-core counterfactual",
        "% overhead vs no-VM run on the same machine",
    );
    fig.push(FigureRow::new("dual-core (paper testbed)", dual));
    fig.push(FigureRow::new("single-core (counterfactual)", solo));
    fig.note("supports Section 4.2.2: without the second core the VM's service load lands on the benchmark");
    fig
}

/// `abl-l2`: the shared-L2-collision hypothesis.
pub fn shared_l2(fidelity: Fidelity) -> FigureResult {
    let shared = mem_overhead_on(MachineSpec::core2_duo_6600(), fidelity);
    let private = mem_overhead_on(MachineSpec::core2_duo_6600().with_private_l2(), fidelity);
    let mut fig = FigureResult::new(
        "abl-l2",
        "MEM-index overhead: shared 4 MB L2 vs private 2x2 MB L2",
        "% overhead vs no-VM run on the same machine",
    );
    fig.push(FigureRow::new("shared L2 (paper testbed)", shared));
    fig.push(FigureRow::new("private L2 (counterfactual)", private));
    fig.note("supports Section 4.2.2: cache collisions over the shared L2 drive the residual MEM overhead");
    fig
}

/// `abl-bt`: guest speed vs host intrusiveness across monitors.
pub fn bt_tradeoff(fidelity: Fidelity) -> FigureResult {
    let cfg = SevenZConfig {
        threads: 1,
        corpus_len: fidelity.pick(48 * 1024, 256 * 1024),
        depth: fidelity.pick(8, 32),
        ..Default::default()
    };
    let kernel = SevenZKernel::characterize(&cfg);
    let iter_secs = kernel.ops_per_iter as f64 / 6.0e9;
    let iters = (fidelity.pick(0.3, 1.0) / iter_secs).ceil() as u64;
    let native = run_native_loop(&kernel.block, iters, 7);

    let mut fig = FigureResult::new(
        "abl-bt",
        "Guest speed vs host intrusiveness (the paper's closing observation)",
        "guest 7z slowdown (value) vs host 2-thread %CPU (detail)",
    );
    for profile in paper_profiles() {
        let guest = run_guest_loop(&profile, &kernel.block, iters, 7) / native;
        let host = sevenz_on_host(2, Some(&profile), fidelity);
        fig.push(
            FigureRow::new(profile.name, guest).with_detail(format!(
                "host 7z gets {:.0}% CPU while this VM runs",
                host.cpu_usage_pct
            )),
        );
    }
    fig.note("the fastest monitor (VmPlayer) is also the most intrusive on the host");
    let _ = host_system(0); // keep the helper import exercised in Fast builds
    fig
}

/// `abl-quad`: the paper's forward-looking claim, tested — "3 and 4 GB
/// are becoming standard on new machines" and more cores make VM
/// hosting even cheaper. Rerun the Figure 7 headline (host 7z, 2
/// threads, VmPlayer VM at idle) on a quad-core testbed.
pub fn quad_core(fidelity: Fidelity) -> FigureResult {
    use vgrid_workloads::sevenz::{SevenZBody, SevenZReport};
    let run = |machine: MachineSpec, with_vm: bool| -> SevenZReport {
        let mut sys = System::new(SystemConfig {
            machine,
            ..SystemConfig::testbed(0xab4)
        });
        if with_vm {
            install_einstein_vm(&mut sys, &VmmProfile::vmplayer(), Priority::Idle, fidelity);
            sys.run_until(SimTime::from_millis(200));
        }
        let cfg = SevenZConfig {
            threads: 2,
            corpus_len: fidelity.pick(32 * 1024, 128 * 1024),
            depth: fidelity.pick(8, 16),
            duration: fidelity.pick(SimDuration::from_secs(2), SimDuration::from_secs(8)),
            ..Default::default()
        };
        let (body, report) = SevenZBody::new(cfg, Priority::Normal);
        sys.spawn("7z", Priority::Normal, Box::new(body));
        let deadline = SimTime::from_secs(3600);
        while !report.borrow().complete && sys.now() < deadline {
            let t = sys.now() + SimDuration::from_secs(1);
            sys.run_until(t);
        }
        let r = report.borrow().clone();
        assert!(r.complete);
        r
    };
    let mut fig = FigureResult::new(
        "abl-quad",
        "Figure 7's worst case (2-thread 7z vs VmPlayer) on a quad-core testbed",
        "% CPU available to 7z",
    );
    for (label, machine) in [
        ("dual-core (paper)", MachineSpec::core2_duo_6600()),
        ("quad-core (counterfactual)", MachineSpec::core2_duo_6600().core2_quad()),
    ] {
        let base = run(machine.clone(), false);
        let vm = run(machine, true);
        fig.push(
            FigureRow::new(label, vm.cpu_usage_pct).with_detail(format!(
                "{:.0}% without the VM; MIPS ratio {:.2}",
                base.cpu_usage_pct,
                vm.mips / base.mips
            )),
        );
    }
    fig.note("with spare cores the monitor's service load stops competing with host work");
    fig
}

/// `abl-lzma`: the compressor's own speed/ratio trade-off (7z's
/// match-finder depth knob), run through the simulated native machine —
/// a sanity anchor showing the benchmark kernel behaves like the tool it
/// stands in for.
pub fn lzma_depth_sweep(fidelity: Fidelity) -> FigureResult {
    use vgrid_workloads::counter::OpCounter;
    use vgrid_workloads::corpus;
    use vgrid_workloads::lzma::{compress, LzmaConfig};
    let len = fidelity.pick(48 * 1024, 256 * 1024);
    let data = corpus::seven_zip_bench(len, 0x12a);
    let mut fig = FigureResult::new(
        "abl-lzma",
        "LZMA match-finder depth: compression ratio vs simulated compression time",
        "output bytes per input KB (lower = better ratio)",
    );
    for depth in [1u32, 4, 16, 64, 256] {
        let mut ops = OpCounter::new();
        let packed = compress(
            &data,
            LzmaConfig {
                depth,
                ..Default::default()
            },
            &mut ops,
        );
        let block = vgrid_machine::ops::OpBlock {
            label: format!("lzma-d{depth}"),
            counts: ops.to_counts(),
            working_set: (len * 9) as u64,
            locality: 0.9,
        };
        let secs = run_native_loop(&block, 1, 1);
        fig.push(
            FigureRow::new(
                format!("depth {depth}"),
                packed.len() as f64 / (len as f64 / 1024.0),
            )
            .with_detail(format!("{:.1} ms simulated compression time", secs * 1e3)),
        );
    }
    fig.note("deeper chain search buys ratio with time — 7z's -mx knob in miniature");
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_rarely_matters_below_benchmark_class() {
        let fig = priority_sweep(Fidelity::Fast);
        let v = |l: &str| fig.value_of(l).unwrap();
        // Idle through Normal: dual core absorbs the VM.
        for label in ["Idle", "BelowNormal", "Normal"] {
            assert!(v(label) < 8.0, "{label}: {}", v(label));
        }
        // A High-priority vCPU outranks the benchmark and must hurt more
        // than the Idle case.
        assert!(v("High") > v("Idle"), "High {} vs Idle {}", v("High"), v("Idle"));
    }

    #[test]
    fn single_core_makes_vm_heavy() {
        let fig = single_core(Fidelity::Fast);
        let dual = fig.value_of("dual-core (paper testbed)").unwrap();
        let solo = fig.value_of("single-core (counterfactual)").unwrap();
        assert!(solo > dual + 10.0, "solo {solo} vs dual {dual}");
        assert!(solo > 25.0, "solo {solo}");
    }

    #[test]
    fn private_l2_reduces_mem_overhead() {
        let fig = shared_l2(Fidelity::Fast);
        let shared = fig.value_of("shared L2 (paper testbed)").unwrap();
        let private = fig.value_of("private L2 (counterfactual)").unwrap();
        assert!(
            private <= shared + 0.5,
            "private {private} vs shared {shared}"
        );
    }

    #[test]
    fn quad_core_absorbs_the_most_intrusive_monitor() {
        let fig = quad_core(Fidelity::Fast);
        let dual = fig.value_of("dual-core (paper)").unwrap();
        let quad = fig.value_of("quad-core (counterfactual)").unwrap();
        // On the dual core VmPlayer squeezes 7z to ~120 %; on a quad the
        // VM has its own cores and 7z keeps nearly its no-VM share.
        assert!(dual < 135.0, "dual {dual}");
        assert!(quad > 160.0, "quad {quad}");
        assert!(quad > dual + 25.0);
    }

    #[test]
    fn lzma_depth_trades_time_for_ratio() {
        let fig = lzma_depth_sweep(Fidelity::Fast);
        let ratio = |d: &str| fig.value_of(d).unwrap();
        // Ratio improves (bytes/KB falls) monotonically-ish with depth.
        assert!(ratio("depth 1") >= ratio("depth 16"));
        assert!(ratio("depth 16") >= ratio("depth 256"));
        assert!(ratio("depth 256") > 0.0);
    }

    #[test]
    fn fastest_guest_is_most_intrusive() {
        let fig = bt_tradeoff(Fidelity::Fast);
        // VmPlayer has the lowest slowdown...
        let vmp = fig.value_of("VMwarePlayer").unwrap();
        for other in ["QEMU", "VirtualBox", "VirtualPC"] {
            assert!(vmp < fig.value_of(other).unwrap());
        }
        // ...and its detail shows the lowest host CPU (asserted in fig7's
        // own test; here we just check the row exists with a detail).
        assert!(fig.rows.iter().all(|r| r.detail.is_some()));
    }
}
