//! Figure 1 — Relative performance of 7z on virtual machines.
//!
//! The 7z LZMA benchmark (integer CPU) runs in each guest; results are
//! normalized against the native run (native = 1.0, larger = slower).
//! Paper: VmPlayer ~1.15, VirtualBox ~1.20, VirtualPC ~1.36, QEMU >2x.

use crate::engine::{Engine, Environment, KernelSpec, TrialSpec};
use crate::figures::{FigureResult, FigureRow};
use crate::testbed::{paper_profiles, Fidelity};
use vgrid_workloads::sevenz::{SevenZConfig, SevenZKernel};

/// Paper-reported slowdowns for annotation.
fn paper_value(name: &str) -> f64 {
    match name {
        "VMwarePlayer" => 1.15,
        "QEMU" => 2.2,
        "VirtualBox" => 1.20,
        "VirtualPC" => 1.36,
        _ => 1.0,
    }
}

/// The 7z kernel config and the iteration count sizing the loop to
/// ~1 s of native execution.
fn kernel_and_iters(fidelity: Fidelity) -> (SevenZConfig, SevenZKernel, u64) {
    let cfg = SevenZConfig {
        threads: 1,
        corpus_len: fidelity.pick(48 * 1024, 256 * 1024),
        depth: fidelity.pick(8, 32),
        ..Default::default()
    };
    let kernel = SevenZKernel::characterize(&cfg);
    let iter_secs = kernel.ops_per_iter as f64 / 6.0e9;
    let iters = (fidelity.pick(0.3, 1.0) / iter_secs).ceil() as u64;
    (cfg, kernel, iters)
}

/// Trial specs: the native baseline first, then one guest trial per
/// monitor, all repeated per the fidelity's repetition count.
pub fn specs(fidelity: Fidelity) -> Vec<TrialSpec> {
    let (_, kernel, iters) = kernel_and_iters(fidelity);
    let loop_kernel = || KernelSpec::OpLoop {
        block: kernel.block.clone(),
        iters,
    };
    let mut specs = vec![
        TrialSpec::new("native", Environment::Native, loop_kernel(), fidelity)
            .repetitions(fidelity.repetitions()),
    ];
    for profile in paper_profiles() {
        specs.push(
            TrialSpec::new(
                profile.name,
                Environment::Guest {
                    profile,
                    vnic: None,
                },
                loop_kernel(),
                fidelity,
            )
            .repetitions(fidelity.repetitions()),
        );
    }
    specs
}

/// Run the experiment on the given engine.
pub fn run_with(engine: &Engine, fidelity: Fidelity) -> FigureResult {
    let (cfg, _, iters) = kernel_and_iters(fidelity);
    let results = engine.run_trials(&specs(fidelity));
    let native = results[0].summary().clone();

    let mut fig = FigureResult::new(
        "fig1",
        "Relative performance of 7z on virtual machines",
        "slowdown vs native (native = 1.0)",
    );
    fig.push(FigureRow::new("native", 1.0).with_paper(1.0));
    for result in &results[1..] {
        let wall = result.summary();
        fig.push(
            FigureRow::new(&result.label, wall.mean / native.mean)
                .with_paper(paper_value(&result.label))
                .with_detail(format!(
                    "±{:.3} (95% CI)",
                    wall.ci95.half_width() / native.mean
                )),
        );
    }
    fig.note(format!(
        "7z LZMA kernel: {} B corpus, depth {}, {} iters, {} reps",
        cfg.corpus_len,
        cfg.depth,
        iters,
        fidelity.repetitions()
    ));
    fig.note("measured with the external (host-side) time reference".to_string());
    fig
}

/// Run the experiment on the process-wide engine.
pub fn run(fidelity: Fidelity) -> FigureResult {
    run_with(Engine::global(), fidelity)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_shape_matches_paper() {
        let fig = run(Fidelity::Fast);
        let v = |l: &str| fig.value_of(l).unwrap();
        // Ordering: VmPlayer < VirtualBox < VirtualPC < QEMU.
        assert!(v("VMwarePlayer") < v("VirtualBox"));
        assert!(v("VirtualBox") < v("VirtualPC"));
        assert!(v("VirtualPC") < v("QEMU"));
        // Magnitudes: all slower than native; QEMU at least twice slower.
        assert!(v("VMwarePlayer") > 1.05 && v("VMwarePlayer") < 1.30);
        assert!(v("QEMU") > 1.9, "QEMU {}", v("QEMU"));
    }
}
