//! Figure 1 — Relative performance of 7z on virtual machines.
//!
//! The 7z LZMA benchmark (integer CPU) runs in each guest; results are
//! normalized against the native run (native = 1.0, larger = slower).
//! Paper: VmPlayer ~1.15, VirtualBox ~1.20, VirtualPC ~1.36, QEMU >2x.

use crate::figures::{FigureResult, FigureRow};
use crate::testbed::{paper_profiles, run_guest_loop, run_native_loop, Fidelity};
use vgrid_simcore::{OnlineStats, RepetitionRunner};
use vgrid_workloads::sevenz::{SevenZConfig, SevenZKernel};

/// Paper-reported slowdowns for annotation.
fn paper_value(name: &str) -> f64 {
    match name {
        "VMwarePlayer" => 1.15,
        "QEMU" => 2.2,
        "VirtualBox" => 1.20,
        "VirtualPC" => 1.36,
        _ => 1.0,
    }
}

/// Run the experiment.
pub fn run(fidelity: Fidelity) -> FigureResult {
    let cfg = SevenZConfig {
        threads: 1,
        corpus_len: fidelity.pick(48 * 1024, 256 * 1024),
        depth: fidelity.pick(8, 32),
        ..Default::default()
    };
    let kernel = SevenZKernel::characterize(&cfg);
    // Size the loop to ~1 s of native execution.
    let iter_secs = kernel.ops_per_iter as f64 / 6.0e9;
    let iters = (fidelity.pick(0.3, 1.0) / iter_secs).ceil() as u64;

    let reps = RepetitionRunner::new().repetitions(fidelity.repetitions());
    let native = reps.run(|seed| run_native_loop(&kernel.block, iters, seed));

    let mut fig = FigureResult::new(
        "fig1",
        "Relative performance of 7z on virtual machines",
        "slowdown vs native (native = 1.0)",
    );
    fig.push(FigureRow::new("native", 1.0).with_paper(1.0));
    for profile in paper_profiles() {
        let mut stats = OnlineStats::new();
        for rep in 0..fidelity.repetitions() {
            let wall = run_guest_loop(&profile, &kernel.block, iters, reps.seed_for(rep));
            stats.push(wall / native.mean);
        }
        fig.push(
            FigureRow::new(profile.name, stats.mean())
                .with_paper(paper_value(profile.name))
                .with_detail(format!("±{:.3} (95% CI)", stats.ci95().half_width())),
        );
    }
    fig.note(format!(
        "7z LZMA kernel: {} B corpus, depth {}, {} iters, {} reps",
        cfg.corpus_len,
        cfg.depth,
        iters,
        fidelity.repetitions()
    ));
    fig.note("measured with the external (host-side) time reference".to_string());
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_shape_matches_paper() {
        let fig = run(Fidelity::Fast);
        let v = |l: &str| fig.value_of(l).unwrap();
        // Ordering: VmPlayer < VirtualBox < VirtualPC < QEMU.
        assert!(v("VMwarePlayer") < v("VirtualBox"));
        assert!(v("VirtualBox") < v("VirtualPC"));
        assert!(v("VirtualPC") < v("QEMU"));
        // Magnitudes: all slower than native; QEMU at least twice slower.
        assert!(v("VMwarePlayer") > 1.05 && v("VMwarePlayer") < 1.30);
        assert!(v("QEMU") > 1.9, "QEMU {}", v("QEMU"));
    }
}
