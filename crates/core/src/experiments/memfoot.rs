//! Section 4.2.1 — Impact on memory.
//!
//! "The memory footprint of a system-level virtual machine is defined in
//! its configuration, with the virtual machine committing all the
//! configured memory when it is running." The table reports each
//! monitor's committed memory (300 MB in the paper's setup) and the
//! fraction of the host's RAM that represents.

use crate::engine::{Engine, Environment, KernelSpec, TrialSpec};
use crate::figures::{FigureResult, FigureRow};
use crate::testbed::{paper_profiles, Fidelity};
use vgrid_machine::MachineSpec;

/// Trial specs: one powered-on idle guest per monitor.
pub fn specs() -> Vec<TrialSpec> {
    paper_profiles()
        .into_iter()
        .map(|profile| {
            TrialSpec::new(
                profile.name,
                Environment::Guest {
                    profile,
                    vnic: None,
                },
                KernelSpec::Footprint,
                Fidelity::Fast,
            )
            .seed(0xfeed)
        })
        .collect()
}

/// Run the memory-footprint accounting on the given engine.
pub fn run_with(engine: &Engine) -> FigureResult {
    let results = engine.run_trials(&specs());
    let host_mb = MachineSpec::core2_duo_6600().mem.total_bytes as f64 / (1024.0 * 1024.0);
    let mut fig = FigureResult::new(
        "tab-mem",
        "Committed memory of a powered-on VM (Section 4.2.1)",
        "MB committed",
    );
    for result in &results {
        let committed_mb = result.value();
        fig.push(
            FigureRow::new(&result.label, committed_mb)
                .with_paper(300.0)
                .with_detail(format!(
                    "{:.0}% of the host's {host_mb:.0} MB",
                    100.0 * committed_mb / host_mb
                )),
        );
    }
    fig.note("constant and known in advance: volunteers know exactly how much RAM they donate");
    fig
}

/// Run the accounting on the process-wide engine.
pub fn run() -> FigureResult {
    run_with(Engine::global())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_vms_commit_the_configured_300mb() {
        let fig = run();
        assert_eq!(fig.rows.len(), 4);
        for row in &fig.rows {
            assert_eq!(row.value, 300.0, "{}", row.label);
        }
    }
}
