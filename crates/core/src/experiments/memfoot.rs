//! Section 4.2.1 — Impact on memory.
//!
//! "The memory footprint of a system-level virtual machine is defined in
//! its configuration, with the virtual machine committing all the
//! configured memory when it is running." The table reports each
//! monitor's committed memory (300 MB in the paper's setup) and the
//! fraction of the host's RAM that represents.

use crate::figures::{FigureResult, FigureRow};
use crate::testbed::{host_system, paper_profiles};
use vgrid_os::Priority;
use vgrid_vmm::{GuestConfig, GuestVm, Vm, VmConfig};

/// Run the memory-footprint accounting.
pub fn run() -> FigureResult {
    let mut fig = FigureResult::new(
        "tab-mem",
        "Committed memory of a powered-on VM (Section 4.2.1)",
        "MB committed",
    );
    for profile in paper_profiles() {
        let mut sys = host_system(0xfeed);
        let guest = GuestVm::new(GuestConfig::new(profile.clone()), sys.machine());
        let vm = Vm::install(
            &mut sys,
            VmConfig::new(format!("vm-{}", profile.name), Priority::Normal),
            guest,
        );
        let committed_mb = vm.committed_memory as f64 / (1024.0 * 1024.0);
        let host_mb = sys.machine().mem.total_bytes as f64 / (1024.0 * 1024.0);
        fig.push(
            FigureRow::new(profile.name, committed_mb)
                .with_paper(300.0)
                .with_detail(format!(
                    "{:.0}% of the host's {host_mb:.0} MB",
                    100.0 * committed_mb / host_mb
                )),
        );
    }
    fig.note("constant and known in advance: volunteers know exactly how much RAM they donate");
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_vms_commit_the_configured_300mb() {
        let fig = run();
        assert_eq!(fig.rows.len(), 4);
        for row in &fig.rows {
            assert_eq!(row.value, 300.0, "{}", row.label);
        }
    }
}
