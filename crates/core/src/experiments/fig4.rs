//! Figure 4 — Absolute performance for NetBench on virtual machines.
//!
//! A 10 MB TCP stream to a LAN iperf server, in Mbit/s (higher = better;
//! the only absolute-valued figure). Paper: native 97.60, VmPlayer
//! bridged 96.02, QEMU 65.91, VirtualPC 35.56, VmPlayer NAT 3.68,
//! VirtualBox ~1.3 (nearly 75x slower than native).

use crate::engine::{Engine, Environment, KernelSpec, TrialSpec};
use crate::figures::{FigureResult, FigureRow};
use crate::testbed::{fig4_environments, Fidelity};
use vgrid_workloads::netbench::NetBenchConfig;

fn paper_value(label: &str) -> f64 {
    match label {
        "native" => 97.60,
        "VmPlayer-bridged" => 96.02,
        "VmPlayer-NAT" => 3.68,
        "QEMU" => 65.91,
        "VirtualBox" => 1.30,
        "VirtualPC" => 35.56,
        _ => 0.0,
    }
}

fn bench_config(fidelity: Fidelity) -> NetBenchConfig {
    NetBenchConfig {
        total_bytes: fidelity.pick(2, 10) * 1024 * 1024,
        ..Default::default()
    }
}

/// Trial specs: the native baseline first, then one guest trial per
/// (monitor, vNIC mode) environment of Figure 4.
pub fn specs(fidelity: Fidelity) -> Vec<TrialSpec> {
    let kernel = || KernelSpec::NetBench(bench_config(fidelity));
    let mut specs =
        vec![TrialSpec::new("native", Environment::Native, kernel(), fidelity).seed(0xf4)];
    for (label, profile, mode) in fig4_environments() {
        specs.push(
            TrialSpec::new(
                label,
                Environment::Guest {
                    profile,
                    vnic: Some(mode),
                },
                kernel(),
                fidelity,
            )
            .seed(0xf5),
        );
    }
    specs
}

/// Run the experiment on the given engine.
pub fn run_with(engine: &Engine, fidelity: Fidelity) -> FigureResult {
    let results = engine.run_trials(&specs(fidelity));
    let mut fig = FigureResult::new(
        "fig4",
        "Absolute performance for NetBench on virtual machines",
        "Mbit/s (higher is better)",
    );
    for result in &results {
        fig.push(
            FigureRow::new(&result.label, result.value()).with_paper(paper_value(&result.label)),
        );
    }
    fig.note(format!(
        "{} MB TCP stream to a LAN iperf server over 100 Mbps Fast Ethernet",
        bench_config(fidelity).total_bytes >> 20
    ));
    fig
}

/// Run the experiment on the process-wide engine.
pub fn run(fidelity: Fidelity) -> FigureResult {
    run_with(Engine::global(), fidelity)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_shape_matches_paper() {
        let fig = run(Fidelity::Fast);
        let v = |l: &str| fig.value_of(l).unwrap();
        // Native ~97.6 Mbps.
        assert!((v("native") - 97.6).abs() < 3.0, "native {}", v("native"));
        // Bridged nearly native.
        assert!(v("VmPlayer-bridged") > 0.95 * v("native"));
        // Ordering: bridged > QEMU > VirtualPC > VmPlayer-NAT > VirtualBox.
        assert!(v("VmPlayer-bridged") > v("QEMU"));
        assert!(v("QEMU") > v("VirtualPC"));
        assert!(v("VirtualPC") > v("VmPlayer-NAT"));
        assert!(v("VmPlayer-NAT") > v("VirtualBox"));
        // Rough magnitudes.
        assert!((50.0..80.0).contains(&v("QEMU")), "qemu {}", v("QEMU"));
        assert!(
            (2.0..6.0).contains(&v("VmPlayer-NAT")),
            "nat {}",
            v("VmPlayer-NAT")
        );
        assert!(v("VirtualBox") < 2.0, "vbox {}", v("VirtualBox"));
        // VirtualBox is dozens of times slower than native.
        assert!(v("native") / v("VirtualBox") > 40.0);
    }
}
