//! Figure 4 — Absolute performance for NetBench on virtual machines.
//!
//! A 10 MB TCP stream to a LAN iperf server, in Mbit/s (higher = better;
//! the only absolute-valued figure). Paper: native 97.60, VmPlayer
//! bridged 96.02, QEMU 65.91, VirtualPC 35.56, VmPlayer NAT 3.68,
//! VirtualBox ~1.3 (nearly 75x slower than native).

use crate::figures::{FigureResult, FigureRow};
use crate::testbed::{fig4_environments, host_system, Fidelity};
use vgrid_os::Priority;
use vgrid_simcore::{SimDuration, SimTime};
use vgrid_vmm::{GuestConfig, GuestVm, Vm, VmConfig, VmmProfile, VnicMode};
use vgrid_workloads::netbench::{NetBenchBody, NetBenchConfig};

fn paper_value(label: &str) -> f64 {
    match label {
        "native" => 97.60,
        "VmPlayer-bridged" => 96.02,
        "VmPlayer-NAT" => 3.68,
        "QEMU" => 65.91,
        "VirtualBox" => 1.30,
        "VirtualPC" => 35.56,
        _ => 0.0,
    }
}

fn bench_config(fidelity: Fidelity) -> NetBenchConfig {
    NetBenchConfig {
        total_bytes: fidelity.pick(2, 10) * 1024 * 1024,
        ..Default::default()
    }
}

/// Native throughput in Mbps.
pub fn native_mbps(fidelity: Fidelity) -> f64 {
    let mut sys = host_system(0xf4);
    let (body, report) = NetBenchBody::new(bench_config(fidelity));
    sys.spawn("netbench", Priority::Normal, Box::new(body));
    assert!(sys.run_to_completion(SimTime::from_secs(3600)));
    let r = report.borrow();
    assert!(r.complete);
    r.mbps
}

/// Guest throughput in Mbps for one profile/mode.
pub fn guest_mbps(profile: &VmmProfile, mode: VnicMode, fidelity: Fidelity) -> f64 {
    let mut sys = host_system(0xf5);
    let mut guest = GuestVm::new(
        GuestConfig::new(profile.clone()).with_vnic(mode),
        sys.machine(),
    );
    let (body, report) = NetBenchBody::new(bench_config(fidelity));
    guest.spawn("netbench", Box::new(body));
    let vm = Vm::install(
        &mut sys,
        VmConfig::new(format!("vm-{}", profile.name), Priority::Normal),
        guest,
    );
    // VirtualBox NAT at ~1.3 Mbps needs over a minute of simulated time
    // for 10 MB.
    let deadline = SimTime::from_secs(7200);
    while !vm.halted() && sys.now() < deadline {
        let t = sys.now() + SimDuration::from_secs(1);
        sys.run_until(t);
    }
    assert!(vm.halted(), "guest netbench did not finish");
    let r = report.borrow();
    assert!(r.complete);
    r.mbps
}

/// Run the experiment.
pub fn run(fidelity: Fidelity) -> FigureResult {
    let mut fig = FigureResult::new(
        "fig4",
        "Absolute performance for NetBench on virtual machines",
        "Mbit/s (higher is better)",
    );
    fig.push(FigureRow::new("native", native_mbps(fidelity)).with_paper(paper_value("native")));
    for (label, profile, mode) in fig4_environments() {
        let mbps = guest_mbps(&profile, mode, fidelity);
        fig.push(FigureRow::new(&label, mbps).with_paper(paper_value(&label)));
    }
    fig.note(format!(
        "{} MB TCP stream to a LAN iperf server over 100 Mbps Fast Ethernet",
        bench_config(fidelity).total_bytes >> 20
    ));
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_shape_matches_paper() {
        let fig = run(Fidelity::Fast);
        let v = |l: &str| fig.value_of(l).unwrap();
        // Native ~97.6 Mbps.
        assert!((v("native") - 97.6).abs() < 3.0, "native {}", v("native"));
        // Bridged nearly native.
        assert!(v("VmPlayer-bridged") > 0.95 * v("native"));
        // Ordering: bridged > QEMU > VirtualPC > VmPlayer-NAT > VirtualBox.
        assert!(v("VmPlayer-bridged") > v("QEMU"));
        assert!(v("QEMU") > v("VirtualPC"));
        assert!(v("VirtualPC") > v("VmPlayer-NAT"));
        assert!(v("VmPlayer-NAT") > v("VirtualBox"));
        // Rough magnitudes.
        assert!((50.0..80.0).contains(&v("QEMU")), "qemu {}", v("QEMU"));
        assert!((2.0..6.0).contains(&v("VmPlayer-NAT")), "nat {}", v("VmPlayer-NAT"));
        assert!(v("VirtualBox") < 2.0, "vbox {}", v("VirtualBox"));
        // VirtualBox is dozens of times slower than native.
        assert!(v("native") / v("VirtualBox") > 40.0);
    }
}
