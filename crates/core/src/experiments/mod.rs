//! Experiment index: one module per paper artifact.
//!
//! | id | paper artifact | module |
//! |----|----------------|--------|
//! | fig1 | Fig. 1, 7z guest slowdown | [`fig1`] |
//! | fig2 | Fig. 2, Matrix guest slowdown | [`fig2`] |
//! | fig3 | Fig. 3, IOBench guest slowdown | [`fig3`] |
//! | fig4 | Fig. 4, NetBench absolute Mbps | [`fig4`] |
//! | fig5/fig6/figfp | Figs. 5-6 + omitted FP plot | [`fig56`] |
//! | fig7/fig8 | Figs. 7-8, host 7z under VM load | [`fig78`] |
//! | tab-mem | Section 4.2.1 memory footprint | [`memfoot`] |
//! | abl-* | prose-claim ablations | [`ablations`] |
//! | grid-tradeoff | deployment-scale extension | [`gridx`] |
//! | timing-method | guest-clock methodology | [`timing`] |

pub mod ablations;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig56;
pub mod fig78;
pub mod gridx;
pub mod memfoot;
pub mod timing;

use crate::figures::FigureResult;
use crate::testbed::Fidelity;

/// Run every figure and table of the paper (not the ablations), in
/// presentation order.
pub fn run_paper_suite(fidelity: Fidelity) -> Vec<FigureResult> {
    let mut out = vec![
        fig1::run(fidelity),
        fig2::run(fidelity),
        fig3::run(fidelity),
        fig4::run(fidelity),
    ];
    let (f5, f6, ffp) = fig56::run(fidelity);
    out.extend([f5, f6, ffp]);
    let (f7, f8) = fig78::run(fidelity);
    out.extend([f7, f8]);
    out.push(memfoot::run());
    out
}

/// Run the ablation suite.
pub fn run_ablation_suite(fidelity: Fidelity) -> Vec<FigureResult> {
    vec![
        ablations::priority_sweep(fidelity),
        ablations::single_core(fidelity),
        ablations::shared_l2(fidelity),
        ablations::bt_tradeoff(fidelity),
        ablations::lzma_depth_sweep(fidelity),
        ablations::quad_core(fidelity),
    ]
}

/// Run the extension experiments (beyond the paper's own evaluation).
pub fn run_extension_suite(fidelity: Fidelity) -> Vec<FigureResult> {
    vec![
        gridx::run(fidelity),
        gridx::image_size_sweep(fidelity),
        gridx::migration_comparison(fidelity),
        timing::run(fidelity),
    ]
}

/// Every experiment id the registry knows, in presentation order.
pub fn experiment_ids() -> Vec<&'static str> {
    vec![
        "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "figfp", "fig7", "fig8", "tab-mem",
        "abl-prio", "abl-cores", "abl-l2", "abl-bt", "abl-lzma", "abl-quad", "grid-tradeoff",
        "grid-image",
        "grid-migration", "timing-method",
    ]
}

/// Run one experiment by id. Multi-figure experiments return the single
/// requested figure. Returns `None` for an unknown id.
pub fn run_by_id(id: &str, fidelity: Fidelity) -> Option<FigureResult> {
    Some(match id {
        "fig1" => fig1::run(fidelity),
        "fig2" => fig2::run(fidelity),
        "fig3" => fig3::run(fidelity),
        "fig4" => fig4::run(fidelity),
        "fig5" => fig56::run(fidelity).0,
        "fig6" => fig56::run(fidelity).1,
        "figfp" => fig56::run(fidelity).2,
        "fig7" => fig78::run(fidelity).0,
        "fig8" => fig78::run(fidelity).1,
        "tab-mem" => memfoot::run(),
        "abl-prio" => ablations::priority_sweep(fidelity),
        "abl-cores" => ablations::single_core(fidelity),
        "abl-l2" => ablations::shared_l2(fidelity),
        "abl-bt" => ablations::bt_tradeoff(fidelity),
        "abl-lzma" => ablations::lzma_depth_sweep(fidelity),
        "abl-quad" => ablations::quad_core(fidelity),
        "grid-tradeoff" => gridx::run(fidelity),
        "grid-image" => gridx::image_size_sweep(fidelity),
        "grid-migration" => gridx::migration_comparison(fidelity),
        "timing-method" => timing::run(fidelity),
        _ => return None,
    })
}

#[cfg(test)]
mod registry_tests {
    use super::*;

    #[test]
    fn unknown_id_is_none() {
        assert!(run_by_id("fig99", Fidelity::Fast).is_none());
    }

    #[test]
    fn every_listed_id_resolves_and_matches() {
        // Run the cheapest one end-to-end; resolve the rest lazily by
        // checking a few spot ids (running all would duplicate the
        // suite tests).
        let fig = run_by_id("tab-mem", Fidelity::Fast).expect("known id");
        assert_eq!(fig.id, "tab-mem");
        for id in experiment_ids() {
            // ids are unique
            assert_eq!(experiment_ids().iter().filter(|&&x| x == id).count(), 1);
        }
    }
}
