//! Experiment index: one module per paper artifact.
//!
//! | id | paper artifact | module |
//! |----|----------------|--------|
//! | fig1 | Fig. 1, 7z guest slowdown | [`fig1`] |
//! | fig2 | Fig. 2, Matrix guest slowdown | [`fig2`] |
//! | fig3 | Fig. 3, IOBench guest slowdown | [`fig3`] |
//! | fig4 | Fig. 4, NetBench absolute Mbps | [`fig4`] |
//! | fig5/fig6/figfp | Figs. 5-6 + omitted FP plot | [`fig56`] |
//! | fig7/fig8 | Figs. 7-8, host 7z under VM load | [`fig78`] |
//! | tab-mem | Section 4.2.1 memory footprint | [`memfoot`] |
//! | abl-* | prose-claim ablations | [`ablations`] |
//! | grid-tradeoff | deployment-scale extension | [`gridx`] |
//! | grid-churn | churn & checkpoint robustness extension | [`gridchurn`] |
//! | timing-method | guest-clock methodology | [`timing`] |
//!
//! Every experiment expresses its measurements as [`crate::engine`]
//! trial specs; the figure modules only translate specs and results to
//! `FigureResult`s. Multi-figure experiments (fig5/fig6/figfp,
//! fig7/fig8) share their simulations through the engine cache, as do
//! ablations that reuse a figure's baseline.

pub mod ablations;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig56;
pub mod fig78;
pub mod gridchurn;
pub mod gridx;
pub mod memfoot;
pub mod timing;

use crate::figures::FigureResult;
use crate::testbed::Fidelity;

/// Run every figure and table of the paper (not the ablations), in
/// presentation order.
pub fn run_paper_suite(fidelity: Fidelity) -> Vec<FigureResult> {
    let mut out = vec![
        fig1::run(fidelity),
        fig2::run(fidelity),
        fig3::run(fidelity),
        fig4::run(fidelity),
    ];
    let (f5, f6, ffp) = fig56::run(fidelity);
    out.extend([f5, f6, ffp]);
    let (f7, f8) = fig78::run(fidelity);
    out.extend([f7, f8]);
    out.push(memfoot::run());
    out
}

/// Run the ablation suite.
pub fn run_ablation_suite(fidelity: Fidelity) -> Vec<FigureResult> {
    vec![
        ablations::priority_sweep(fidelity),
        ablations::single_core(fidelity),
        ablations::shared_l2(fidelity),
        ablations::bt_tradeoff(fidelity),
        ablations::lzma_depth_sweep(fidelity),
        ablations::quad_core(fidelity),
    ]
}

/// Run the extension experiments (beyond the paper's own evaluation).
pub fn run_extension_suite(fidelity: Fidelity) -> Vec<FigureResult> {
    vec![
        gridx::run(fidelity),
        gridx::image_size_sweep(fidelity),
        gridx::migration_comparison(fidelity),
        timing::run(fidelity),
    ]
}

type Runner = fn(Fidelity) -> FigureResult;

fn run_fig5(fidelity: Fidelity) -> FigureResult {
    fig56::run(fidelity).0
}
fn run_fig6(fidelity: Fidelity) -> FigureResult {
    fig56::run(fidelity).1
}
fn run_figfp(fidelity: Fidelity) -> FigureResult {
    fig56::run(fidelity).2
}
fn run_fig7(fidelity: Fidelity) -> FigureResult {
    fig78::run(fidelity).0
}
fn run_fig8(fidelity: Fidelity) -> FigureResult {
    fig78::run(fidelity).1
}
fn run_tab_mem(_fidelity: Fidelity) -> FigureResult {
    memfoot::run()
}

/// The single source of truth for the experiment registry: `(id,
/// runner)` in presentation order. [`experiment_ids`] and [`run_by_id`]
/// both derive from this table, so they cannot drift apart.
const REGISTRY: &[(&str, Runner)] = &[
    ("fig1", fig1::run),
    ("fig2", fig2::run),
    ("fig3", fig3::run),
    ("fig4", fig4::run),
    ("fig5", run_fig5),
    ("fig6", run_fig6),
    ("figfp", run_figfp),
    ("fig7", run_fig7),
    ("fig8", run_fig8),
    ("tab-mem", run_tab_mem),
    ("abl-prio", ablations::priority_sweep),
    ("abl-cores", ablations::single_core),
    ("abl-l2", ablations::shared_l2),
    ("abl-bt", ablations::bt_tradeoff),
    ("abl-lzma", ablations::lzma_depth_sweep),
    ("abl-quad", ablations::quad_core),
    ("grid-tradeoff", gridx::run),
    ("grid-image", gridx::image_size_sweep),
    ("grid-migration", gridx::migration_comparison),
    ("grid-churn", gridchurn::run),
    ("timing-method", timing::run),
];

/// Every experiment id the registry knows, in presentation order.
pub fn experiment_ids() -> Vec<&'static str> {
    REGISTRY.iter().map(|(id, _)| *id).collect()
}

/// Run one experiment by id. Multi-figure experiments return the single
/// requested figure. Returns `None` for an unknown id.
pub fn run_by_id(id: &str, fidelity: Fidelity) -> Option<FigureResult> {
    REGISTRY
        .iter()
        .find(|(known, _)| *known == id)
        .map(|(_, runner)| runner(fidelity))
}

#[cfg(test)]
mod registry_tests {
    use super::*;

    #[test]
    fn unknown_id_is_none() {
        assert!(run_by_id("fig99", Fidelity::Fast).is_none());
        assert!(run_by_id("", Fidelity::Fast).is_none());
    }

    #[test]
    fn every_listed_id_resolves_and_matches() {
        let ids = experiment_ids();
        // Ids are unique...
        for id in &ids {
            assert_eq!(ids.iter().filter(|x| x == &id).count(), 1, "duplicate {id}");
        }
        // ...every listed id runs through `run_by_id` and produces the
        // figure it names (cheap in one test process: the engine cache
        // already holds most trials from the per-module tests)...
        for id in &ids {
            let fig = run_by_id(id, Fidelity::Fast).expect("listed id must resolve");
            assert_eq!(fig.id, *id, "runner for {id} produced {}", fig.id);
        }
        // ...and `run_by_id` knows no ids beyond the listed ones: both
        // derive from REGISTRY, whose length pins the experiment count.
        assert_eq!(ids.len(), REGISTRY.len());
        assert_eq!(ids.len(), 21);
    }
}
