//! The equivalence guard for the slice-coalescing fast path: every
//! registered experiment, run end to end, must produce *byte-identical*
//! figure JSON under the coalescing scheduler and under the per-quantum
//! reference (every quantum boundary materialized as a real event).
//!
//! This is its own test binary on purpose: `force_per_quantum_reference`
//! is process-global, so the reference pass must not share a process
//! with tests that assume the default mode concurrently.

use vgrid_core::experiments::{experiment_ids, run_by_id};
use vgrid_core::Fidelity;
use vgrid_os::force_per_quantum_reference;

#[test]
fn all_experiments_bit_identical_under_reference_scheduler() {
    let ids = experiment_ids();
    assert!(ids.len() >= 20, "registry shrank to {} ids", ids.len());

    let mut fast = Vec::new();
    for id in &ids {
        let fig = run_by_id(id, Fidelity::Fast).expect("known id");
        fast.push(fig.to_json());
    }

    force_per_quantum_reference(true);
    let result = std::panic::catch_unwind(|| {
        ids.iter()
            .map(|id| run_by_id(id, Fidelity::Fast).expect("known id").to_json())
            .collect::<Vec<_>>()
    });
    force_per_quantum_reference(false);
    let reference = result.expect("reference pass panicked");

    for ((id, f), r) in ids.iter().zip(&fast).zip(&reference) {
        assert_eq!(f, r, "{id}: fast path diverged from per-quantum reference");
    }
}
