//! Pins the engine's parallel repetition path to the sequential path:
//! same specs, same seeds, same Welford fold order — the statistics must
//! agree to the bit (asserted here at 1e-9), and repeated same-seed runs
//! must produce identical figures.

use vgrid_core::experiments::{fig1, fig56};
use vgrid_core::{Engine, Fidelity, TrialResult};

fn assert_trials_match(parallel: &[TrialResult], sequential: &[TrialResult]) {
    assert_eq!(parallel.len(), sequential.len());
    for (p, s) in parallel.iter().zip(sequential) {
        assert_eq!(p.label, s.label);
        assert_eq!(p.metrics.len(), s.metrics.len());
        for ((pn, pm), (sn, sm)) in p.metrics.iter().zip(&s.metrics) {
            assert_eq!(pn, sn);
            assert_eq!(pm.n, sm.n, "{}: {pn} n", p.label);
            assert!((pm.mean - sm.mean).abs() < 1e-9, "{}: {pn} mean", p.label);
            assert!(
                (pm.stddev - sm.stddev).abs() < 1e-9,
                "{}: {pn} stddev",
                p.label
            );
            assert!((pm.min - sm.min).abs() < 1e-9, "{}: {pn} min", p.label);
            assert!((pm.max - sm.max).abs() < 1e-9, "{}: {pn} max", p.label);
        }
    }
}

#[test]
fn fig1_parallel_matches_sequential() {
    let specs = fig1::specs(Fidelity::Fast);
    let parallel = Engine::new().run_trials(&specs);
    let sequential = Engine::new().run_trials_seq(&specs);
    assert_trials_match(&parallel, &sequential);
}

#[test]
fn fig5_parallel_matches_sequential() {
    let specs = fig56::specs(Fidelity::Fast);
    let parallel = Engine::new().run_trials(&specs);
    let sequential = Engine::new().run_trials_seq(&specs);
    assert_trials_match(&parallel, &sequential);
}

#[test]
fn same_seed_runs_produce_identical_figures() {
    let a = fig1::run_with(&Engine::new(), Fidelity::Fast);
    let b = fig1::run_with(&Engine::new(), Fidelity::Fast);
    assert_eq!(a.rows.len(), b.rows.len());
    for (ra, rb) in a.rows.iter().zip(&b.rows) {
        assert_eq!(ra.label, rb.label);
        assert_eq!(ra.value, rb.value, "{}", ra.label);
        assert_eq!(ra.detail, rb.detail, "{}", ra.label);
    }
}
