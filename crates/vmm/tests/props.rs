//! Property-based tests of the monitor profiles and guest clock wiring.

use proptest::prelude::*;
use vgrid_machine::ops::{OpBlock, OpClassCounts};
use vgrid_machine::MachineSpec;
use vgrid_vmm::{VmmProfile, VnicMode};

prop_compose! {
    fn arb_block()(
        int_ops in 0u64..1_000_000,
        fp_ops in 0u64..1_000_000,
        mem in 0u64..1_000_000,
        branches in 0u64..1_000_000,
        kernel in 0u64..10_000,
        ws in 1u64..(32u64 << 20),
        loc in 0.0f64..1.0,
    ) -> OpBlock {
        OpBlock {
            label: "arb".to_string(),
            counts: OpClassCounts {
                int_ops,
                fp_ops,
                mem_reads: mem / 2,
                mem_writes: mem - mem / 2,
                branches,
                kernel_ops: kernel,
            },
            working_set: ws,
            locality: loc,
        }
    }
}

proptest! {
    /// Dilation never makes guest work cheaper, never changes memory
    /// behaviour descriptors, and is per-class monotone.
    #[test]
    fn dilation_never_speeds_up_work(block in arb_block()) {
        let cpu = MachineSpec::core2_duo_6600().cpu_model();
        let native = cpu.solo_estimate(&block).cycles;
        for profile in VmmProfile::all() {
            let dilated = profile.dilate(&block);
            prop_assert_eq!(dilated.working_set, block.working_set);
            prop_assert!((dilated.locality - block.locality).abs() < 1e-12);
            prop_assert!(dilated.counts.int_ops >= block.counts.int_ops);
            prop_assert!(dilated.counts.kernel_ops >= block.counts.kernel_ops);
            let cost = cpu.solo_estimate(&dilated).cycles;
            prop_assert!(cost + 1.0 >= native, "{}: {} < {}", profile.name, cost, native);
        }
    }

    /// Device-overhead blocks scale monotonically with bytes/frames and
    /// are never free.
    #[test]
    fn overhead_blocks_monotone(bytes_a in 1u64..(32u64 << 20), bytes_b in 1u64..(32u64 << 20)) {
        let ops_per_sec = 6.0e9;
        let (small, large) = if bytes_a <= bytes_b { (bytes_a, bytes_b) } else { (bytes_b, bytes_a) };
        for profile in VmmProfile::all() {
            let s = profile.disk_overhead_block(small, ops_per_sec).counts.int_ops;
            let l = profile.disk_overhead_block(large, ops_per_sec).counts.int_ops;
            prop_assert!(s <= l);
            prop_assert!(s > 0);
            let nat = profile.net_overhead_block(10, VnicMode::Nat, ops_per_sec).counts.int_ops;
            let bridged = profile.net_overhead_block(10, VnicMode::Bridged, ops_per_sec).counts.int_ops;
            prop_assert!(nat >= bridged, "{}", profile.name);
        }
    }
}
