//! # vgrid-vmm
//!
//! System-level virtual machine monitors for the `vgrid` testbed — the
//! four products the paper evaluates (VMware Player, QEMU+kqemu,
//! VirtualBox, VirtualPC), modeled mechanistically:
//!
//! * [`profiles::VmmProfile`] — calibrated per-product cost parameters
//!   (instruction dilation, device-exit costs, vNIC per-frame costs,
//!   host service duty, committed memory);
//! * [`guest::GuestVm`] — a full nested guest kernel (scheduler, page
//!   cache, network stack, distortable clock) driven by the host through
//!   a step/complete protocol;
//! * [`body`] — the host-side threads of a running VM: one thread per
//!   vCPU executing dilated guest work and escaping device operations to
//!   host file/network I/O, and the service thread burning the monitor's
//!   fixed emulation duty; plus VM lifecycle (install, checkpoint).
//!
//! ```
//! use vgrid_machine::ops::OpBlock;
//! use vgrid_os::{Action, Priority, System, SystemConfig, ThreadBody, ThreadCtx};
//! use vgrid_simcore::SimTime;
//! use vgrid_vmm::{GuestConfig, GuestVm, Vm, VmConfig, VmmProfile};
//!
//! #[derive(Debug)]
//! struct Burn(u32);
//! impl ThreadBody for Burn {
//!     fn next(&mut self, _ctx: &mut ThreadCtx<'_>) -> Action {
//!         if self.0 == 0 { return Action::Exit; }
//!         self.0 -= 1;
//!         Action::compute(OpBlock::int_alu(60_000_000)) // 10 ms guest
//!     }
//! }
//!
//! let mut sys = System::new(SystemConfig::testbed(1));
//! let mut guest = GuestVm::new(GuestConfig::new(VmmProfile::qemu()), sys.machine());
//! guest.spawn("science", Box::new(Burn(10)));
//! let vm = Vm::install(&mut sys, VmConfig::new("demo", Priority::Normal), guest);
//! sys.run_until(SimTime::from_secs(2));
//! assert!(vm.halted());
//! // QEMU's dilation made 100 ms of guest work cost ~0.25-0.30 s of host CPU.
//! let host_cpu = sys.thread_stats(vm.vcpu).cpu_time.as_secs_f64();
//! assert!(host_cpu > 0.2 && host_cpu < 0.4, "host cpu {host_cpu}");
//! ```

#![forbid(unsafe_code)]

pub mod body;
pub mod guest;
pub mod profiles;

pub use body::{Vm, VmConfig, VmHandle};
pub use guest::{GuestConfig, GuestNetOp, GuestStep, GuestVm};
pub use profiles::{VmmProfile, VnicMode};
