//! Calibrated profiles of the four virtual machine monitors the paper
//! evaluates: VMware Player 2.0.2, QEMU 0.9 + kqemu 1.3, VirtualBox
//! 1.6.2 and Microsoft VirtualPC 2007 (Section 3).
//!
//! All four are *full virtualization* monitors of the pre-hardware-assist
//! era: user-mode guest code runs (nearly) directly or through binary
//! translation, privileged guest code traps into expensive emulation, and
//! device I/O crosses a world switch into a host-side device model. A
//! [`VmmProfile`] parameterizes those mechanisms; the constants are
//! calibrated so the testbed reproduces the *shape* of the paper's
//! Figures 1-8 (each field's comment names the figure it is fitted to).
//! The mechanisms are real: changing one constant moves every figure that
//! depends on it coherently.

use vgrid_machine::ops::{OpBlock, OpClassCounts};
use vgrid_simcore::SimDuration;

/// Virtual NIC attachment mode (the paper measures VmPlayer in both;
/// Figure 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VnicMode {
    /// Bridged to the physical LAN: frames pass nearly untranslated.
    Bridged,
    /// Userspace NAT: every frame is rewritten by the VMM process.
    Nat,
}

/// Calibrated description of one VMM product.
#[derive(Debug, Clone)]
pub struct VmmProfile {
    /// Product name as the paper uses it.
    pub name: &'static str,
    /// Dilation of user-mode integer ops under BT/direct execution.
    /// Fit: Figure 1 (7z guest slowdown).
    pub int_dilation: f64,
    /// Dilation of floating-point ops (FPU instructions pass through BT
    /// almost unmodified). Fit: Figure 2 (Matrix guest slowdown).
    pub fp_dilation: f64,
    /// Dilation of memory operations (shadow page tables, segment checks).
    /// Fit: Figures 1-2 jointly.
    pub mem_dilation: f64,
    /// Dilation of branches (BT translates control flow; QEMU chains
    /// translation blocks). Fit: Figure 1.
    pub branch_dilation: f64,
    /// Multiplier on kernel-mode/privileged operations (trap + emulate or
    /// retranslate). Fit: Figure 3's syscall-heavy I/O paths.
    pub kernel_dilation: f64,
    /// Host CPU burned per virtual-disk request (world switch + device
    /// model dispatch). Fit: Figure 3.
    pub disk_exit: SimDuration,
    /// Host CPU burned per byte moved through the virtual disk (buffer
    /// copies and image-format bookkeeping), seconds/byte. Fit: Figure 3.
    pub disk_per_byte: f64,
    /// Host CPU per guest network frame in bridged mode, seconds.
    /// Fit: Figure 4 (VmPlayer bridged = 96.02 Mbps).
    pub bridged_per_frame: f64,
    /// Host CPU per guest network frame through the userspace NAT path,
    /// seconds. Fit: Figure 4 (VmPlayer NAT 3.68, VBox 1.3, QEMU 65.91,
    /// VirtualPC 35.56 Mbps).
    pub nat_per_frame: f64,
    /// Which vNIC mode this product uses by default in the paper's runs.
    pub default_vnic: VnicMode,
    /// Fraction of one host core consumed by the VMM's service activity
    /// (timer/APIC emulation, BT cache maintenance, host-side device
    /// threads) whenever the VM is powered on, at elevated host priority
    /// regardless of the vCPU's priority class. Fit: Figures 7-8 (7z on
    /// host reaches 120 % with VmPlayer vs ~160 % with the others).
    pub service_duty: f64,
    /// Committed guest RAM (the paper configures every VM with 300 MB;
    /// Section 4.2.1).
    pub guest_ram: u64,
    /// Guest timer-tick loss fraction while descheduled (timekeeping
    /// quality; Section 4's UDP-time-server methodology exists because
    /// of this).
    pub tick_loss: f64,
}

const MB: u64 = 1024 * 1024;

impl VmmProfile {
    /// VMware Player 2.0.2 — the fastest guest execution (aggressive BT)
    /// and the heaviest host service load.
    pub fn vmplayer() -> Self {
        VmmProfile {
            name: "VMwarePlayer",
            int_dilation: 1.18,
            fp_dilation: 1.04,
            mem_dilation: 1.08,
            branch_dilation: 1.24,
            kernel_dilation: 9.0,
            disk_exit: SimDuration::from_micros(30),
            disk_per_byte: 5.6e-9,
            bridged_per_frame: 2e-6,
            nat_per_frame: 3.0e-3,
            default_vnic: VnicMode::Bridged,
            service_duty: 0.80,
            guest_ram: 300 * MB,
            tick_loss: 0.25,
        }
    }

    /// QEMU 0.9 with the kqemu accelerator — dynamic translation without
    /// the years of BT tuning; slowest CPU, decent (slirp) networking.
    pub fn qemu() -> Self {
        VmmProfile {
            name: "QEMU",
            int_dilation: 2.95,
            fp_dilation: 1.32,
            mem_dilation: 1.32,
            branch_dilation: 3.4,
            kernel_dilation: 22.0,
            disk_exit: SimDuration::from_micros(120),
            disk_per_byte: 110e-9,
            bridged_per_frame: 30e-6,
            nat_per_frame: 47e-6,
            default_vnic: VnicMode::Nat,
            service_duty: 0.40,
            guest_ram: 300 * MB,
            tick_loss: 0.45,
        }
    }

    /// VirtualBox 1.6.2 — BT derived in part from QEMU but heavily
    /// optimized; catastrophic NAT networking in this release.
    pub fn virtualbox() -> Self {
        VmmProfile {
            name: "VirtualBox",
            int_dilation: 1.24,
            fp_dilation: 1.06,
            mem_dilation: 1.12,
            branch_dilation: 1.32,
            kernel_dilation: 11.0,
            disk_exit: SimDuration::from_micros(60),
            disk_per_byte: 22e-9,
            bridged_per_frame: 20e-6,
            nat_per_frame: 8.9e-3,
            default_vnic: VnicMode::Nat,
            service_duty: 0.40,
            guest_ram: 300 * MB,
            tick_loss: 0.35,
        }
    }

    /// Microsoft VirtualPC 2007 — no Linux guest additions (Section 3.4),
    /// so every path is unoptimized.
    pub fn virtualpc() -> Self {
        VmmProfile {
            name: "VirtualPC",
            int_dilation: 1.40,
            fp_dilation: 1.12,
            mem_dilation: 1.18,
            branch_dilation: 1.55,
            kernel_dilation: 14.0,
            disk_exit: SimDuration::from_micros(80),
            disk_per_byte: 24e-9,
            bridged_per_frame: 25e-6,
            nat_per_frame: 200e-6,
            default_vnic: VnicMode::Nat,
            service_duty: 0.40,
            guest_ram: 300 * MB,
            tick_loss: 0.40,
        }
    }

    /// All four profiles in the paper's presentation order.
    pub fn all() -> Vec<VmmProfile> {
        vec![
            Self::vmplayer(),
            Self::qemu(),
            Self::virtualbox(),
            Self::virtualpc(),
        ]
    }

    /// Dilate a guest-side block into the host work it costs under this
    /// monitor: each operation class is multiplied by its dilation
    /// factor; privileged operations explode by `kernel_dilation`.
    pub fn dilate(&self, block: &OpBlock) -> OpBlock {
        let c = &block.counts;
        let s = |x: u64, f: f64| (x as f64 * f).round() as u64;
        OpBlock {
            label: format!("{}:{}", self.name, block.label),
            counts: OpClassCounts {
                int_ops: s(c.int_ops, self.int_dilation),
                fp_ops: s(c.fp_ops, self.fp_dilation),
                mem_reads: s(c.mem_reads, self.mem_dilation),
                mem_writes: s(c.mem_writes, self.mem_dilation),
                branches: s(c.branches, self.branch_dilation),
                kernel_ops: s(c.kernel_ops, self.kernel_dilation),
            },
            working_set: block.working_set,
            locality: block.locality,
        }
    }

    /// Host CPU block for emulating one virtual-disk request of `bytes`.
    /// `ops_per_sec` converts seconds of host CPU into abstract int ops
    /// (pass `cpu_freq * int_ops_per_cycle` of the host machine).
    pub fn disk_overhead_block(&self, bytes: u64, ops_per_sec: f64) -> OpBlock {
        let secs = self.disk_exit.as_secs_f64() + bytes as f64 * self.disk_per_byte;
        OpBlock {
            label: format!("{}:vdisk-emu", self.name),
            counts: OpClassCounts {
                int_ops: (secs * ops_per_sec) as u64,
                ..Default::default()
            },
            working_set: bytes.max(4096),
            locality: 0.9,
        }
    }

    /// Host CPU per guest frame for the given vNIC mode.
    pub fn per_frame_cpu(&self, mode: VnicMode) -> f64 {
        match mode {
            VnicMode::Bridged => self.bridged_per_frame,
            VnicMode::Nat => self.nat_per_frame,
        }
    }

    /// Host CPU block for forwarding `frames` guest frames.
    pub fn net_overhead_block(&self, frames: u64, mode: VnicMode, ops_per_sec: f64) -> OpBlock {
        let secs = frames as f64 * self.per_frame_cpu(mode);
        OpBlock {
            label: format!("{}:vnic-{:?}", self.name, mode),
            counts: OpClassCounts {
                int_ops: (secs * ops_per_sec) as u64,
                ..Default::default()
            },
            working_set: (frames * 1536).max(4096),
            locality: 0.9,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_products_in_paper_order() {
        let all = VmmProfile::all();
        let names: Vec<_> = all.iter().map(|p| p.name).collect();
        assert_eq!(
            names,
            vec!["VMwarePlayer", "QEMU", "VirtualBox", "VirtualPC"]
        );
    }

    #[test]
    fn qemu_is_slowest_cpu_vmplayer_fastest() {
        let all = VmmProfile::all();
        let int: Vec<f64> = all.iter().map(|p| p.int_dilation).collect();
        assert!(int[1] > int[3] && int[3] > int[2] && int[2] > int[0]);
    }

    #[test]
    fn fp_dilation_below_int_dilation_everywhere() {
        // Figure 2 vs Figure 1: floating point is hurt less than integer
        // for every product.
        for p in VmmProfile::all() {
            assert!(p.fp_dilation < p.int_dilation, "{}", p.name);
        }
    }

    #[test]
    fn vmplayer_most_intrusive_on_host() {
        let all = VmmProfile::all();
        let vmp = &all[0];
        for other in &all[1..] {
            assert!(vmp.service_duty > other.service_duty);
        }
    }

    #[test]
    fn all_commit_300mb() {
        for p in VmmProfile::all() {
            assert_eq!(p.guest_ram, 300 * MB);
        }
    }

    #[test]
    fn dilate_scales_classes_independently() {
        let p = VmmProfile::qemu();
        let block = OpBlock {
            label: "x".into(),
            counts: OpClassCounts {
                int_ops: 1000,
                fp_ops: 1000,
                kernel_ops: 100,
                ..Default::default()
            },
            working_set: 1 << 20,
            locality: 0.5,
        };
        let d = p.dilate(&block);
        assert_eq!(d.counts.int_ops, 2950);
        assert_eq!(d.counts.fp_ops, 1320);
        assert_eq!(d.counts.kernel_ops, 2200);
        assert_eq!(d.working_set, block.working_set);
        assert!(d.label.contains("QEMU"));
    }

    #[test]
    fn nat_slower_than_bridged_for_everyone() {
        for p in VmmProfile::all() {
            assert!(p.nat_per_frame > p.bridged_per_frame, "{}", p.name);
        }
    }

    #[test]
    fn nat_frame_costs_predict_figure4_ordering() {
        // The NAT path serializes per-frame translation with the wire
        // (119.7 us per 1496-byte frame at 100 Mbps); throughput is
        // mss*8 / (nat_per_frame + wire_per_frame).
        let wire = 1496.0 * 8.0 / 100e6;
        let mbps = |p: &VmmProfile| 1460.0 * 8.0 / (p.nat_per_frame + wire) / 1e6;
        let q = mbps(&VmmProfile::qemu());
        let pc = mbps(&VmmProfile::virtualpc());
        let vmw = mbps(&VmmProfile::vmplayer());
        let vb = mbps(&VmmProfile::virtualbox());
        // Ordering matches Figure 4: QEMU > VPC > VmPlayer-NAT > VBox.
        assert!(q > pc && pc > vmw && vmw > vb);
        // Rough absolute targets (paper: 65.91 / 35.56 / 3.68 / ~1.3);
        // guest-side stack costs shave the end-to-end figure a little
        // below these upper bounds (fig4's own test checks end-to-end).
        assert!((q - 70.0).abs() < 8.0, "qemu {q}");
        assert!((pc - 36.5).abs() < 5.0, "vpc {pc}");
        assert!((vmw - 3.74).abs() < 0.5, "vmplayer {vmw}");
        assert!(vb < 1.7, "vbox {vb}");
    }

    #[test]
    fn overhead_blocks_scale() {
        let p = VmmProfile::vmplayer();
        let ops_per_sec = 6.0e9;
        let small = p.disk_overhead_block(4096, ops_per_sec);
        let large = p.disk_overhead_block(32 << 20, ops_per_sec);
        assert!(large.counts.int_ops > 100 * small.counts.int_ops);
        let one = p.net_overhead_block(1, VnicMode::Nat, ops_per_sec);
        let hundred = p.net_overhead_block(100, VnicMode::Nat, ops_per_sec);
        assert!(hundred.counts.int_ops > 90 * one.counts.int_ops);
    }
}
