//! Host-side anatomy of a running virtual machine.
//!
//! Installing a VM into a host [`System`] spawns two host threads, which
//! is how the paper's VMs actually intrude on the host:
//!
//! * the **vCPU thread** (at the user-chosen priority class — the paper
//!   tests `Normal` and `Idle`) executes the guest's dilated instruction
//!   stream and performs the host-side halves of device operations
//!   (image-file I/O, host socket I/O, NAT translation CPU);
//! * the **service thread** (at `High`, regardless of the VM's priority)
//!   models the monitor's unconditional emulation activity — timer/APIC
//!   emulation at the guest's 1000 Hz tick rate, BT cache maintenance,
//!   host-side device threads. Its duty cycle is the profile's
//!   `service_duty`, the single knob behind the paper's Figures 7-8
//!   (and the reason an *idle-priority* VM still costs the host CPU).
//!
//! The facade also implements VM **checkpointing** (Section 1 motivates
//! it: "saving the state of the guest OS to persistent storage ... allows
//! simultaneously for fault tolerance and migration"): on request the
//! vCPU pauses the guest and streams the committed guest RAM to a host
//! file.

use crate::guest::{GuestNetOp, GuestStep, GuestVm};
use crate::profiles::{VmmProfile, VnicMode};
use std::cell::RefCell;
use std::rc::Rc;
use vgrid_machine::ops::{OpBlock, OpClassCounts};
use vgrid_machine::DiskRequestKind;
use vgrid_os::{
    Action, ActionResult, ConnId, FileId, Priority, RemoteHost, System, ThreadBody, ThreadCtx,
    ThreadId,
};
use vgrid_simcore::{DetMap, SimDuration, SimTime};
use vgrid_simobs::MetricsRegistry;

/// Checkpoint write chunk.
const CKPT_CHUNK: u64 = 16 * 1024 * 1024;
/// Poll period for an idle guest with no scheduled wake-up.
const IDLE_POLL: SimDuration = SimDuration::from_millis(10);

/// Shared control/status block between the harness and the VM threads.
#[derive(Debug, Default)]
pub struct VmControl {
    /// Set by the harness to request a checkpoint to the given host path.
    pub checkpoint_request: Option<String>,
    /// Set by the vCPU when the checkpoint finishes.
    pub checkpoint_done_at: Option<SimTime>,
    /// Set when every guest thread has exited.
    pub halted: bool,
    /// Ask the VM to power off (vCPU and service threads exit).
    pub power_off: bool,
    /// Set once the VM was hard-killed ([`VmHandle::kill`]); guards the
    /// one-shot release of the committed guest RAM.
    pub killed: bool,
    /// Live guest-clock lag behind host time, seconds (updated by the
    /// vCPU; the paper's timing-imprecision phenomenon, observable from
    /// outside the VM).
    pub guest_clock_lag_secs: f64,
    /// Number of tick-loss events the guest clock has suffered.
    pub guest_clock_loss_events: u64,
    /// VMM exits taken for virtual-disk device emulation.
    pub exits_disk: u64,
    /// VMM exits taken for virtual-NIC operations.
    pub exits_net: u64,
    /// VMM exits taken because every guest thread was idle.
    pub exits_idle: u64,
    /// Ethernet frames the NAT vNIC translated (0 in bridged mode).
    pub nat_frames: u64,
    /// Host file writes issued by the checkpoint machinery
    /// ([`CKPT_CHUNK`]-sized streaming of the guest RAM).
    pub ckpt_chunk_writes: u64,
}

/// VM installation parameters.
#[derive(Debug, Clone)]
pub struct VmConfig {
    /// VM name (thread names derive from it).
    pub name: String,
    /// Host scheduling class of the vCPU thread (the paper tests Normal
    /// and Idle).
    pub vcpu_priority: Priority,
    /// Host path of the disk image backing the virtual disk.
    pub image_path: String,
}

impl VmConfig {
    /// Conventional config for a named VM at the given priority.
    pub fn new(name: impl Into<String>, vcpu_priority: Priority) -> Self {
        let name = name.into();
        VmConfig {
            image_path: format!("/vm/{name}.img"),
            name,
            vcpu_priority,
        }
    }
}

/// Handle to an installed VM.
#[derive(Debug)]
pub struct VmHandle {
    /// The first vCPU host thread (guests default to one vCPU).
    pub vcpu: ThreadId,
    /// All vCPU host threads (virtual SMP guests have several).
    pub vcpus: Vec<ThreadId>,
    /// The service host thread.
    pub service: ThreadId,
    /// Shared control block.
    pub control: Rc<RefCell<VmControl>>,
    /// Memory the monitor committed at power-on (Section 4.2.1: fixed,
    /// known in advance — 300 MB in the paper's setup).
    pub committed_memory: u64,
}

impl VmHandle {
    /// Request a checkpoint of the guest RAM to `path`.
    pub fn request_checkpoint(&self, path: impl Into<String>) {
        self.control.borrow_mut().checkpoint_request = Some(path.into());
    }

    /// When the last requested checkpoint completed, if it has.
    pub fn checkpoint_done_at(&self) -> Option<SimTime> {
        self.control.borrow().checkpoint_done_at
    }

    /// Power the VM off (threads exit at their next scheduling point).
    pub fn power_off(&self) {
        self.control.borrow_mut().power_off = true;
    }

    /// True once the guest has halted (all guest threads exited).
    pub fn halted(&self) -> bool {
        self.control.borrow().halted
    }

    /// Publish the monitor's device-emulation counters into an
    /// observability registry. Pure function of simulation state.
    pub fn publish_metrics(&self, m: &mut MetricsRegistry) {
        let c = self.control.borrow();
        m.counter_add("vmm.exits.disk", c.exits_disk);
        m.counter_add("vmm.exits.net", c.exits_net);
        m.counter_add("vmm.exits.idle", c.exits_idle);
        m.counter_add("vmm.nat.frames", c.nat_frames);
        m.counter_add("vmm.ckpt.chunk_writes", c.ckpt_chunk_writes);
        m.counter_add("vmm.clock.loss_events", c.guest_clock_loss_events);
        m.gauge_add("vmm.clock.lag_secs", c.guest_clock_lag_secs);
    }

    /// Run `sys` until the guest halts or `deadline` passes, waking at
    /// event resolution rather than polling a wall-clock grid. Returns
    /// true if the guest halted in time.
    pub fn run_until_halted(&self, sys: &mut System, deadline: SimTime) -> bool {
        let control = self.control.clone();
        sys.run_until_event(deadline, || control.borrow().halted)
    }

    /// Freeze the whole VM (owner-preemption fault: the monitor is
    /// paused, not destroyed). Every vCPU and the service thread stop
    /// consuming host CPU; guest state — RAM commitment included — is
    /// retained, so [`VmHandle::resume`] continues without loss. This is
    /// the paper's argued VM advantage over a native science process,
    /// which would have to roll back to its last checkpoint instead.
    pub fn suspend(&self, sys: &mut System) {
        for &v in &self.vcpus {
            sys.suspend_thread(v);
        }
        sys.suspend_thread(self.service);
    }

    /// Undo [`VmHandle::suspend`]: the VM's threads rejoin the ready
    /// queues and the guest picks up exactly where it stopped.
    pub fn resume(&self, sys: &mut System) {
        for &v in &self.vcpus {
            sys.resume_thread(v);
        }
        sys.resume_thread(self.service);
    }

    /// Hard-kill the VM (the owner reclaimed the machine): all VM
    /// threads die at the current instant without any guest-side
    /// shutdown, and the committed guest RAM is released back to the
    /// host. Unsaved guest state is lost; only on-disk state (the image
    /// file, any written checkpoints) survives. Idempotent.
    pub fn kill(&self, sys: &mut System) {
        {
            let mut c = self.control.borrow_mut();
            if c.killed {
                return;
            }
            c.killed = true;
            c.power_off = true;
        }
        for &v in &self.vcpus {
            sys.kill_thread(v);
        }
        sys.kill_thread(self.service);
        sys.release_memory(self.committed_memory);
    }
}

/// The VM facade.
pub struct Vm;

impl Vm {
    /// Install a VM: spawns one host thread per vCPU plus the service
    /// thread in `sys`. Panics if the host cannot commit the guest RAM;
    /// use [`Vm::try_install`] to handle that case.
    pub fn install(sys: &mut System, cfg: VmConfig, guest: GuestVm) -> VmHandle {
        let committed = guest.profile().guest_ram;
        let name = cfg.name.clone();
        match Vm::try_install(sys, cfg, guest) {
            Ok(vm) => vm,
            Err(available) => panic!(
                "cannot power on {}: needs {} MB committed but only {} MB of RAM remain",
                name,
                committed >> 20,
                available >> 20
            ),
        }
    }

    /// Install a VM, refusing (with the remaining RAM budget in bytes)
    /// when the host cannot hold the guest's committed memory alongside
    /// the OS working set — the practical limit the paper's
    /// Section 4.2.1 discusses.
    pub fn try_install(sys: &mut System, cfg: VmConfig, guest: GuestVm) -> Result<VmHandle, u64> {
        let control = Rc::new(RefCell::new(VmControl::default()));
        let profile = guest.profile().clone();
        let committed = profile.guest_ram;
        // The monitor commits the configured guest RAM up front.
        sys.commit_memory(committed)?;
        let n_vcpus = guest.vcpu_count();
        let ops_per_sec = sys.machine().cpu.freq_hz as f64 * sys.machine().cpu.int_ops_per_cycle;
        let guest = Rc::new(RefCell::new(guest));
        let vcpus: Vec<ThreadId> = (0..n_vcpus)
            .map(|v| {
                sys.spawn(
                    format!("{}-vcpu{v}", cfg.name),
                    cfg.vcpu_priority,
                    Box::new(VcpuBody::new(guest.clone(), v, &cfg, control.clone())),
                )
            })
            .collect();
        let service = sys.spawn(
            format!("{}-svc", cfg.name),
            Priority::High,
            Box::new(ServiceBody::new(&profile, ops_per_sec, control.clone())),
        );
        // The monitor's service activity (timer/APIC emulation, DPC-level
        // device work) executes on the CPU holding the VM's hot state:
        // steer it toward the vCPU's core so an otherwise-idle core is
        // not needlessly disturbed (Figure 5/6 behaviour).
        sys.set_buddy(service, vcpus[0]);
        Ok(VmHandle {
            vcpu: vcpus[0],
            vcpus,
            service,
            control,
            committed_memory: committed,
        })
    }
}

#[derive(Debug)]
enum VPhase {
    OpenImage,
    Drive,
    Computing,
    DiskOverhead {
        kind: DiskRequestKind,
        offset: u64,
        bytes: u64,
    },
    DiskSeek {
        kind: DiskRequestKind,
        bytes: u64,
    },
    DiskIo,
    NetOverhead(NetOpKind),
    NetIo {
        guest_conn: ConnId,
        expect_connect: bool,
    },
    CkptOpen {
        path: String,
    },
    CkptWrite {
        remaining: u64,
    },
    CkptSync,
    CkptClose,
}

#[derive(Debug)]
enum NetOpKind {
    Connect {
        guest_conn: ConnId,
        remote: RemoteHost,
    },
    Send {
        guest_conn: ConnId,
        bytes: u64,
    },
    Recv {
        guest_conn: ConnId,
        bytes: u64,
    },
    Close {
        guest_conn: ConnId,
    },
}

/// The vCPU host thread body. SMP guests spawn one per virtual CPU, all
/// sharing the nested guest kernel (safe: the host simulation is single-
/// threaded, so borrows never overlap).
#[derive(Debug)]
pub struct VcpuBody {
    guest: Rc<RefCell<GuestVm>>,
    vcpu: usize,
    image_path: String,
    image: Option<FileId>,
    ckpt_file: Option<FileId>,
    conn_map: DetMap<ConnId, ConnId>,
    control: Rc<RefCell<VmControl>>,
    phase: VPhase,
    /// CPU time observed at the previous activation (for the serviced-
    /// span calculation feeding the guest clock).
    last_cpu: SimDuration,
}

impl VcpuBody {
    fn new(
        guest: Rc<RefCell<GuestVm>>,
        vcpu: usize,
        cfg: &VmConfig,
        control: Rc<RefCell<VmControl>>,
    ) -> Self {
        VcpuBody {
            guest,
            vcpu,
            image_path: cfg.image_path.clone(),
            image: None,
            ckpt_file: None,
            conn_map: DetMap::new(),
            control,
            phase: VPhase::OpenImage,
            last_cpu: SimDuration::ZERO,
        }
    }
}

impl ThreadBody for VcpuBody {
    fn next(&mut self, ctx: &mut ThreadCtx<'_>) -> Action {
        let serviced = ctx.cpu_time.saturating_sub(self.last_cpu);
        self.last_cpu = ctx.cpu_time;
        loop {
            if let ActionResult::Err(e) = ctx.result {
                panic!("vcpu: host operation failed: {e:?} in {:?}", self.phase);
            }
            match &self.phase {
                VPhase::OpenImage => {
                    if let ActionResult::Opened(id) = ctx.result {
                        self.image = Some(id);
                        self.phase = VPhase::Drive;
                        ctx.result = ActionResult::None;
                        continue;
                    }
                    return Action::FileOpen {
                        path: self.image_path.clone(),
                        create: true,
                        truncate: false,
                        direct: true,
                    };
                }
                VPhase::Drive => {
                    {
                        let guest = self.guest.borrow();
                        let mut c = self.control.borrow_mut();
                        c.guest_clock_lag_secs = guest.clock.total_lag().as_secs_f64();
                        c.guest_clock_loss_events = guest.clock.loss_events;
                        if c.power_off {
                            return Action::Exit;
                        }
                        if let Some(path) = c.checkpoint_request.take() {
                            drop(c);
                            drop(guest);
                            self.phase = VPhase::CkptOpen { path };
                            continue;
                        }
                    }
                    let step = self.guest.borrow_mut().step_full(self.vcpu, ctx.now);
                    match step {
                        GuestStep::Compute(block) => {
                            self.phase = VPhase::Computing;
                            return Action::compute(block);
                        }
                        GuestStep::DiskIo {
                            kind,
                            offset,
                            bytes,
                            overhead,
                        } => {
                            self.control.borrow_mut().exits_disk += 1;
                            self.phase = VPhase::DiskOverhead {
                                kind,
                                offset,
                                bytes,
                            };
                            return Action::compute(overhead);
                        }
                        GuestStep::Net(op) => {
                            {
                                let mut c = self.control.borrow_mut();
                                c.exits_net += 1;
                                // Per-frame NAT translation work is what the
                                // profiles charge for; count the frames it
                                // covered (bridged vNICs translate nothing).
                                let guest = self.guest.borrow();
                                if guest.vnic_mode() == VnicMode::Nat {
                                    if let GuestNetOp::Send { bytes, .. }
                                    | GuestNetOp::Recv { bytes, .. } = &op
                                    {
                                        c.nat_frames += guest.frames_for(*bytes);
                                    }
                                }
                            }
                            let (kind, overhead) = match op {
                                GuestNetOp::Connect {
                                    guest_conn,
                                    remote,
                                    overhead,
                                } => (NetOpKind::Connect { guest_conn, remote }, overhead),
                                GuestNetOp::Send {
                                    guest_conn,
                                    bytes,
                                    overhead,
                                } => (NetOpKind::Send { guest_conn, bytes }, overhead),
                                GuestNetOp::Recv {
                                    guest_conn,
                                    bytes,
                                    overhead,
                                } => (NetOpKind::Recv { guest_conn, bytes }, overhead),
                                GuestNetOp::Close {
                                    guest_conn,
                                    overhead,
                                } => (NetOpKind::Close { guest_conn }, overhead),
                            };
                            self.phase = VPhase::NetOverhead(kind);
                            return Action::compute(overhead);
                        }
                        GuestStep::Idle { until } => {
                            self.control.borrow_mut().exits_idle += 1;
                            let dt = match until {
                                Some(t) if t > ctx.now => t.since(ctx.now),
                                Some(_) => SimDuration::from_micros(100),
                                None => IDLE_POLL,
                            };
                            return Action::Sleep(dt);
                        }
                        GuestStep::Halted => {
                            self.control.borrow_mut().halted = true;
                            return Action::Exit;
                        }
                    }
                }
                VPhase::Computing => {
                    self.guest
                        .borrow_mut()
                        .complete_compute(self.vcpu, ctx.now, serviced);
                    self.phase = VPhase::Drive;
                    ctx.result = ActionResult::None;
                    continue;
                }
                VPhase::DiskOverhead {
                    kind,
                    offset,
                    bytes,
                } => {
                    let (kind, offset, bytes) = (*kind, *offset, *bytes);
                    self.phase = VPhase::DiskSeek { kind, bytes };
                    return Action::FileSeek {
                        file: self.image.expect("image opened"),
                        pos: offset,
                    };
                }
                VPhase::DiskSeek { kind, bytes } => {
                    debug_assert_eq!(ctx.result, ActionResult::Sought);
                    let (kind, bytes) = (*kind, *bytes);
                    self.phase = VPhase::DiskIo;
                    let file = self.image.expect("image opened");
                    return match kind {
                        DiskRequestKind::Read => Action::FileRead { file, bytes },
                        DiskRequestKind::Write => Action::FileWrite { file, bytes },
                    };
                }
                VPhase::DiskIo => {
                    self.guest.borrow_mut().complete_io(self.vcpu, ctx.now);
                    self.phase = VPhase::Drive;
                    ctx.result = ActionResult::None;
                    continue;
                }
                VPhase::NetOverhead(kind) => match kind {
                    NetOpKind::Connect { guest_conn, remote } => {
                        let (gc, remote) = (*guest_conn, *remote);
                        self.phase = VPhase::NetIo {
                            guest_conn: gc,
                            expect_connect: true,
                        };
                        return Action::NetConnect { remote };
                    }
                    NetOpKind::Send { guest_conn, bytes } => {
                        let (gc, bytes) = (*guest_conn, *bytes);
                        let host = self.conn_map[&gc];
                        self.phase = VPhase::NetIo {
                            guest_conn: gc,
                            expect_connect: false,
                        };
                        return Action::NetSend { conn: host, bytes };
                    }
                    NetOpKind::Recv { guest_conn, bytes } => {
                        let (gc, bytes) = (*guest_conn, *bytes);
                        let host = self.conn_map[&gc];
                        self.phase = VPhase::NetIo {
                            guest_conn: gc,
                            expect_connect: false,
                        };
                        return Action::NetRecv { conn: host, bytes };
                    }
                    NetOpKind::Close { guest_conn } => {
                        let gc = *guest_conn;
                        let host = self.conn_map.remove(&gc).expect("mapped");
                        self.phase = VPhase::NetIo {
                            guest_conn: gc,
                            expect_connect: false,
                        };
                        return Action::NetClose { conn: host };
                    }
                },
                VPhase::NetIo {
                    guest_conn,
                    expect_connect,
                } => {
                    if *expect_connect {
                        let ActionResult::Connected(host) = ctx.result else {
                            panic!("expected host connection, got {:?}", ctx.result)
                        };
                        self.conn_map.insert(*guest_conn, host);
                    }
                    self.guest.borrow_mut().complete_io(self.vcpu, ctx.now);
                    self.phase = VPhase::Drive;
                    ctx.result = ActionResult::None;
                    continue;
                }
                VPhase::CkptOpen { path } => {
                    if let ActionResult::Opened(id) = ctx.result {
                        self.ckpt_file = Some(id);
                        self.phase = VPhase::CkptWrite {
                            remaining: self.guest.borrow().profile().guest_ram,
                        };
                        ctx.result = ActionResult::None;
                        continue;
                    }
                    return Action::FileOpen {
                        path: path.clone(),
                        create: true,
                        truncate: true,
                        direct: false,
                    };
                }
                VPhase::CkptWrite { remaining } => {
                    let remaining = *remaining;
                    if remaining == 0 {
                        self.phase = VPhase::CkptSync;
                        continue;
                    }
                    let n = CKPT_CHUNK.min(remaining);
                    self.phase = VPhase::CkptWrite {
                        remaining: remaining - n,
                    };
                    self.control.borrow_mut().ckpt_chunk_writes += 1;
                    return Action::FileWrite {
                        file: self.ckpt_file.expect("opened"),
                        bytes: n,
                    };
                }
                VPhase::CkptSync => {
                    if ctx.result == ActionResult::Synced {
                        self.phase = VPhase::CkptClose;
                        continue;
                    }
                    return Action::FileSync {
                        file: self.ckpt_file.expect("opened"),
                    };
                }
                VPhase::CkptClose => {
                    if ctx.result == ActionResult::Closed {
                        self.ckpt_file = None;
                        self.control.borrow_mut().checkpoint_done_at = Some(ctx.now);
                        self.phase = VPhase::Drive;
                        ctx.result = ActionResult::None;
                        continue;
                    }
                    return Action::FileClose {
                        file: self.ckpt_file.expect("opened"),
                    };
                }
            }
        }
    }
}

/// The monitor's service thread: a fixed duty cycle of emulation work.
#[derive(Debug)]
pub struct ServiceBody {
    duty_block: std::rc::Rc<OpBlock>,
    sleep: SimDuration,
    control: Rc<RefCell<VmControl>>,
    busy_phase: bool,
}

impl ServiceBody {
    fn new(profile: &VmmProfile, ops_per_sec: f64, control: Rc<RefCell<VmControl>>) -> Self {
        // 1 ms service period (the guest's 1000 Hz tick drives it).
        let period = SimDuration::from_millis(1);
        let busy = period.scale(profile.service_duty);
        let sleep = period.saturating_sub(busy);
        let duty_block = OpBlock {
            label: format!("{}:service", profile.name),
            counts: OpClassCounts {
                int_ops: (busy.as_secs_f64() * ops_per_sec) as u64,
                ..Default::default()
            },
            working_set: 256 * 1024, // BT caches / device state
            locality: 0.7,
        };
        ServiceBody {
            duty_block: std::rc::Rc::new(duty_block),
            sleep,
            control,
            busy_phase: true,
        }
    }
}

impl ThreadBody for ServiceBody {
    fn next(&mut self, _ctx: &mut ThreadCtx<'_>) -> Action {
        if self.control.borrow().power_off || self.control.borrow().halted {
            return Action::Exit;
        }
        self.busy_phase = !self.busy_phase;
        if self.busy_phase {
            if self.sleep.is_zero() {
                return Action::Compute(self.duty_block.clone());
            }
            Action::Sleep(self.sleep)
        } else {
            Action::Compute(self.duty_block.clone())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guest::GuestConfig;
    use vgrid_machine::ops::OpBlock as OB;
    use vgrid_os::SystemConfig;

    #[derive(Debug)]
    struct GuestBurn {
        iters: u32,
    }
    impl ThreadBody for GuestBurn {
        fn next(&mut self, _ctx: &mut ThreadCtx<'_>) -> Action {
            if self.iters == 0 {
                return Action::Exit;
            }
            self.iters -= 1;
            Action::compute(OB::int_alu(60_000_000)) // 10 ms guest
        }
    }

    fn testbed() -> System {
        System::new(SystemConfig::testbed(11))
    }

    #[test]
    fn vm_executes_guest_work_with_dilation() {
        let mut sys = testbed();
        // 100 x 10 ms = 1 s of guest work under VmPlayer.
        let mut guest = GuestVm::new(GuestConfig::new(VmmProfile::vmplayer()), sys.machine());
        guest.spawn("burn", Box::new(GuestBurn { iters: 100 }));
        let vm = Vm::install(&mut sys, VmConfig::new("vm0", Priority::Normal), guest);
        sys.run_until(SimTime::from_secs(10));
        assert!(vm.halted(), "guest should have finished");
        let vcpu_cpu = sys.thread_stats(vm.vcpu).cpu_time.as_secs_f64();
        // VmPlayer int dilation 1.16: ~1.16 s of host CPU for 1 s of
        // guest work.
        assert!((1.10..1.25).contains(&vcpu_cpu), "vcpu cpu {vcpu_cpu}");
    }

    #[test]
    fn qemu_dilation_roughly_doubles_host_cost() {
        let mut sys = testbed();
        let mut guest = GuestVm::new(GuestConfig::new(VmmProfile::qemu()), sys.machine());
        guest.spawn("burn", Box::new(GuestBurn { iters: 50 }));
        let vm = Vm::install(&mut sys, VmConfig::new("vmq", Priority::Normal), guest);
        sys.run_until(SimTime::from_secs(10));
        assert!(vm.halted());
        let vcpu_cpu = sys.thread_stats(vm.vcpu).cpu_time.as_secs_f64();
        // QEMU int dilation 2.95: 0.5 s of guest int work costs ~1.5 s.
        assert!(
            (1.3..1.7).contains(&vcpu_cpu),
            "vcpu cpu {vcpu_cpu} for 0.5 s guest"
        );
    }

    #[test]
    fn service_thread_burns_its_duty() {
        let mut sys = testbed();
        let mut guest = GuestVm::new(GuestConfig::new(VmmProfile::vmplayer()), sys.machine());
        guest.spawn("burn", Box::new(GuestBurn { iters: u32::MAX }));
        let vm = Vm::install(&mut sys, VmConfig::new("vm0", Priority::Normal), guest);
        sys.run_until(SimTime::from_secs(4));
        let svc = sys.thread_stats(vm.service).cpu_time.as_secs_f64();
        // duty 0.8 over 4 s = ~3.2 s.
        assert!((3.0..3.4).contains(&svc), "service cpu {svc}");
    }

    #[test]
    fn committed_memory_is_the_configured_300mb() {
        let mut sys = testbed();
        let guest = GuestVm::new(GuestConfig::new(VmmProfile::virtualbox()), sys.machine());
        let vm = Vm::install(&mut sys, VmConfig::new("vmb", Priority::Normal), guest);
        assert_eq!(vm.committed_memory, 300 * 1024 * 1024);
    }

    #[test]
    fn checkpoint_writes_guest_ram_and_takes_disk_time() {
        let mut sys = testbed();
        let mut guest = GuestVm::new(GuestConfig::new(VmmProfile::vmplayer()), sys.machine());
        guest.spawn("burn", Box::new(GuestBurn { iters: u32::MAX }));
        let vm = Vm::install(&mut sys, VmConfig::new("vm0", Priority::Normal), guest);
        sys.run_until(SimTime::from_millis(100));
        vm.request_checkpoint("/ckpt/vm0.sav");
        sys.run_until(SimTime::from_secs(30));
        let done = vm.checkpoint_done_at().expect("checkpoint finished");
        // 300 MB at ~55 MB/s write: >= ~5 s after the request.
        let elapsed = done.as_secs_f64() - 0.1;
        assert!((4.0..9.0).contains(&elapsed), "checkpoint took {elapsed}");
        assert_eq!(sys.fs.size_of("/ckpt/vm0.sav"), Some(300 * 1024 * 1024));
    }

    #[test]
    #[should_panic(expected = "cannot power on")]
    fn host_refuses_vms_beyond_its_ram() {
        // 1 GB host, 25% OS headroom -> 768 MB budget: two 300 MB VMs
        // fit, the third does not.
        let mut sys = testbed();
        for i in 0..3 {
            let guest = GuestVm::new(GuestConfig::new(VmmProfile::vmplayer()), sys.machine());
            Vm::install(
                &mut sys,
                VmConfig::new(format!("vm{i}"), Priority::Normal),
                guest,
            );
        }
    }

    #[test]
    fn power_off_stops_both_threads() {
        let mut sys = testbed();
        let mut guest = GuestVm::new(GuestConfig::new(VmmProfile::virtualpc()), sys.machine());
        guest.spawn("burn", Box::new(GuestBurn { iters: u32::MAX }));
        let vm = Vm::install(&mut sys, VmConfig::new("vmp", Priority::Normal), guest);
        sys.run_until(SimTime::from_millis(500));
        vm.power_off();
        sys.run_until(SimTime::from_secs(2));
        assert!(sys.is_exited(vm.vcpu));
        assert!(sys.is_exited(vm.service));
    }

    #[test]
    fn suspend_freezes_guest_and_resume_continues_without_loss() {
        let mut sys = testbed();
        let mut guest = GuestVm::new(GuestConfig::new(VmmProfile::vmplayer()), sys.machine());
        guest.spawn("burn", Box::new(GuestBurn { iters: u32::MAX }));
        let vm = Vm::install(&mut sys, VmConfig::new("vms", Priority::Normal), guest);
        sys.run_until(SimTime::from_secs(1));
        let before = sys.thread_stats(vm.vcpu).cpu_time;
        vm.suspend(&mut sys);
        sys.run_until(SimTime::from_secs(3));
        let frozen = sys.thread_stats(vm.vcpu).cpu_time;
        // A suspended VM consumes no host CPU at all (vCPU or service).
        assert_eq!(before, frozen, "suspended vCPU kept running");
        assert_eq!(sys.committed_memory(), vm.committed_memory);
        vm.resume(&mut sys);
        sys.run_until(SimTime::from_secs(4));
        let resumed = sys.thread_stats(vm.vcpu).cpu_time;
        assert!(resumed > frozen, "resumed vCPU must make progress");
    }

    #[test]
    fn kill_stops_threads_and_releases_committed_ram() {
        let mut sys = testbed();
        let mut guest = GuestVm::new(GuestConfig::new(VmmProfile::qemu()), sys.machine());
        guest.spawn("burn", Box::new(GuestBurn { iters: u32::MAX }));
        let vm = Vm::install(&mut sys, VmConfig::new("vmk", Priority::Normal), guest);
        sys.run_until(SimTime::from_millis(500));
        assert_eq!(sys.committed_memory(), vm.committed_memory);
        vm.kill(&mut sys);
        vm.kill(&mut sys); // idempotent: releases RAM once
        assert!(sys.is_exited(vm.vcpu));
        assert!(sys.is_exited(vm.service));
        assert_eq!(sys.committed_memory(), 0);
        sys.run_until(SimTime::from_secs(2));
        let vcpu = sys.thread_stats(vm.vcpu).cpu_time;
        sys.run_until(SimTime::from_secs(3));
        assert_eq!(sys.thread_stats(vm.vcpu).cpu_time, vcpu);
    }

    #[test]
    fn try_install_reports_remaining_budget_instead_of_panicking() {
        let mut sys = testbed();
        for i in 0..2 {
            let guest = GuestVm::new(GuestConfig::new(VmmProfile::vmplayer()), sys.machine());
            let r = Vm::try_install(
                &mut sys,
                VmConfig::new(format!("vm{i}"), Priority::Normal),
                guest,
            );
            assert!(r.is_ok());
        }
        let guest = GuestVm::new(GuestConfig::new(VmmProfile::vmplayer()), sys.machine());
        let err = Vm::try_install(&mut sys, VmConfig::new("vm2", Priority::Normal), guest)
            .expect_err("third VM must not fit");
        // 768 MB budget minus two 300 MB commitments = 168 MB left.
        assert_eq!(err, 168 * 1024 * 1024);
    }

    #[test]
    fn idle_priority_vcpu_yields_to_host_load() {
        let mut sys = System::new(SystemConfig {
            boost_interval: None,
            ..SystemConfig::testbed(11)
        });
        let mut guest = GuestVm::new(GuestConfig::new(VmmProfile::virtualbox()), sys.machine());
        guest.spawn("burn", Box::new(GuestBurn { iters: u32::MAX }));
        let vm = Vm::install(&mut sys, VmConfig::new("vmi", Priority::Idle), guest);
        // Two host hogs occupy both cores.
        #[derive(Debug)]
        struct Hog;
        impl ThreadBody for Hog {
            fn next(&mut self, _ctx: &mut ThreadCtx<'_>) -> Action {
                Action::compute(OB::int_alu(10_000_000))
            }
        }
        sys.spawn("hog1", Priority::Normal, Box::new(Hog));
        sys.spawn("hog2", Priority::Normal, Box::new(Hog));
        sys.run_until(SimTime::from_secs(3));
        let vcpu = sys.thread_stats(vm.vcpu).cpu_time.as_secs_f64();
        let svc = sys.thread_stats(vm.service).cpu_time.as_secs_f64();
        assert!(vcpu < 0.1, "idle vcpu starved: {vcpu}");
        // But the service thread keeps burning at High priority — the
        // mechanism behind Figure 7.
        assert!(svc > 1.0, "service kept running: {svc}");
    }
}
