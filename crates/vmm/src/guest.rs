//! The guest virtual machine: a nested single-vCPU kernel.
//!
//! [`GuestVm`] is a complete guest operating system instance — its own
//! scheduler (round-robin over one virtual CPU, like the paper's
//! single-CPU 300 MB Ubuntu guests), its own filesystem with its own page
//! cache, its own network stack, and its own (distortable) clock. It is
//! *externally clocked*: it makes progress only when the host schedules
//! its vCPU thread, which drives it through a step/complete protocol:
//!
//! 1. the vCPU body calls [`GuestVm::step`], receiving either a
//!    [`GuestStep::Compute`] block (guest instructions, already dilated
//!    into host work by the VMM profile), a device operation that must
//!    escape to the host ([`GuestStep::DiskIo`], [`GuestStep::Net`]), or
//!    an idle report;
//! 2. the body performs the host-side work and calls
//!    [`GuestVm::complete_compute`] / [`GuestVm::complete_io`];
//! 3. repeat.
//!
//! This double traversal — guest syscall + guest FS + guest stack, then
//! world switch, then host file/net I/O — is exactly the structure that
//! makes guest I/O expensive in the paper's Figure 3/4, and it emerges
//! here from composition rather than from a fitted curve.

use crate::profiles::{VmmProfile, VnicMode};
use std::collections::VecDeque;
use vgrid_machine::ops::OpBlock;
use vgrid_machine::{CpuModel, DiskRequest, DiskRequestKind, MachineSpec};
use vgrid_os::fs::{FileSystem, FsConfig};
use vgrid_os::net::{NetConfig, NetStack};
use vgrid_os::{Action, ActionResult, ConnId, RemoteHost, ThreadBody, ThreadCtx, ThreadId};
use vgrid_simcore::{SimDuration, SimRng, SimTime};
use vgrid_timeref::{GuestClock, GuestClockConfig};

/// Guest construction parameters.
#[derive(Debug, Clone)]
pub struct GuestConfig {
    /// The monitor hosting this guest.
    pub profile: VmmProfile,
    /// Number of virtual CPUs (the paper's guests use 1; VMware Player
    /// of the era supported 2-way virtual SMP).
    pub vcpus: u32,
    /// vNIC attachment mode.
    pub vnic_mode: VnicMode,
    /// Guest scheduler quantum.
    pub quantum: SimDuration,
    /// Maximum guest compute chunk surfaced per step (bounds how long the
    /// guest runs between clock/scheduler bookkeeping points).
    pub chunk: SimDuration,
    /// Seed for guest-side randomness.
    pub seed: u64,
}

impl GuestConfig {
    /// Defaults for a given profile (paper setup: 300 MB single-vCPU
    /// Ubuntu guest, default vNIC mode of the product).
    pub fn new(profile: VmmProfile) -> Self {
        let vnic_mode = profile.default_vnic;
        GuestConfig {
            profile,
            vcpus: 1,
            vnic_mode,
            quantum: SimDuration::from_millis(20),
            chunk: SimDuration::from_millis(5),
            seed: 0x6e57,
        }
    }

    /// Configure a virtual SMP guest with `n` vCPUs.
    pub fn with_vcpus(mut self, n: u32) -> Self {
        self.vcpus = n.max(1);
        self
    }

    /// Override the vNIC mode (the paper measures VmPlayer both bridged
    /// and NAT).
    pub fn with_vnic(mut self, mode: VnicMode) -> Self {
        self.vnic_mode = mode;
        self
    }
}

/// What the vCPU must do next on the host.
#[derive(Debug)]
pub enum GuestStep {
    /// Execute this block (already dilated to host work), then call
    /// [`GuestVm::complete_compute`].
    Compute(OpBlock),
    /// Perform a virtual-disk request: run `overhead` (device-model CPU),
    /// then the host image I/O, then call [`GuestVm::complete_io`].
    DiskIo {
        /// Read or write the image.
        kind: DiskRequestKind,
        /// Byte offset within the image file.
        offset: u64,
        /// Transfer size.
        bytes: u64,
        /// Host CPU cost of the device emulation.
        overhead: OpBlock,
    },
    /// Perform a virtual-NIC operation: run `overhead`, then the host
    /// network action, then call [`GuestVm::complete_io`].
    Net(GuestNetOp),
    /// No guest thread is runnable; the vCPU may halt until the given
    /// host time (if any wake is pending) or indefinitely.
    Idle {
        /// Earliest pending guest wake-up, in host time.
        until: Option<SimTime>,
    },
    /// Every guest thread has exited.
    Halted,
}

/// A guest network operation escaping to the host.
#[derive(Debug)]
pub enum GuestNetOp {
    /// Open a host-side connection on behalf of the guest connection.
    Connect {
        /// Guest-side connection id (for the body's mapping table).
        guest_conn: ConnId,
        /// The peer.
        remote: RemoteHost,
        /// Host CPU cost of the vNIC path.
        overhead: OpBlock,
    },
    /// Forward payload from the guest.
    Send {
        /// Guest-side connection id.
        guest_conn: ConnId,
        /// Payload bytes.
        bytes: u64,
        /// Host CPU cost of the vNIC path (per-frame translation).
        overhead: OpBlock,
    },
    /// Receive payload for the guest.
    Recv {
        /// Guest-side connection id.
        guest_conn: ConnId,
        /// Payload bytes.
        bytes: u64,
        /// Host CPU cost of the vNIC path.
        overhead: OpBlock,
    },
    /// Tear down the host-side connection.
    Close {
        /// Guest-side connection id.
        guest_conn: ConnId,
        /// Host CPU cost.
        overhead: OpBlock,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GState {
    Ready,
    Running,
    Blocked,
    Exited,
}

#[derive(Debug)]
enum GCont {
    Resume,
    Deliver(ActionResult),
    Disk {
        reqs: VecDeque<DiskRequest>,
        result: ActionResult,
    },
    Net(NetKind),
}

#[derive(Debug)]
enum NetKind {
    Connect {
        remote: RemoteHost,
        result: ActionResult,
    },
    Send {
        conn: ConnId,
        bytes: u64,
        result: ActionResult,
    },
    Recv {
        conn: ConnId,
        bytes: u64,
        result: ActionResult,
    },
    Close {
        conn: ConnId,
        result: ActionResult,
    },
}

#[derive(Debug)]
struct GExec {
    /// Guest-side remaining work.
    block: OpBlock,
    /// Guest-side piece currently executing on the host.
    in_flight: Option<OpBlock>,
    cont: GCont,
}

#[derive(Debug)]
struct GThread {
    name: String,
    body: Option<Box<dyn ThreadBody>>,
    pending: ActionResult,
    exec: Option<GExec>,
    state: GState,
    rng: SimRng,
    quantum_left: SimDuration,
    /// Guest work executed (undilated guest-seconds).
    cpu_time: SimDuration,
    wake_at: Option<SimTime>,
    joiners: Vec<usize>,
}

#[derive(Debug)]
enum PendingHost {
    Disk {
        tid: usize,
        reqs: VecDeque<DiskRequest>,
        result: ActionResult,
    },
    Net {
        tid: usize,
    },
}

/// Per-virtual-CPU execution state.
#[derive(Debug, Default)]
struct VcpuState {
    /// Guest thread currently bound to this vCPU.
    current: Option<usize>,
    /// Host operation this vCPU has escaped to, if any.
    pending_host: Option<PendingHost>,
    /// Parameters of the network operation currently escaped to the host
    /// (present iff `pending_host` is `PendingHost::Net`).
    pending_net_kind: Option<NetKind>,
}

/// The nested guest kernel.
#[derive(Debug)]
pub struct GuestVm {
    cfg: GuestConfig,
    cpu: CpuModel,
    ops_per_sec: f64,
    /// Guest filesystem (public for experiment setup inside the guest).
    pub fs: FileSystem,
    net: NetStack,
    /// The guest's distortable clock.
    pub clock: GuestClock,
    threads: Vec<GThread>,
    ready: VecDeque<usize>,
    vcpus: Vec<VcpuState>,
    rng: SimRng,
}

const ACTIVATION_FUSE: u32 = 10_000;

impl GuestVm {
    /// Build a guest over the host machine's CPU model.
    pub fn new(cfg: GuestConfig, host: &MachineSpec) -> Self {
        let cpu = host.cpu_model();
        let ops_per_sec = host.cpu.freq_hz as f64 * host.cpu.int_ops_per_cycle;
        let fs = FileSystem::new(FsConfig::for_ram(cfg.profile.guest_ram));
        // The guest's NIC driver/stack cost per frame: kept small here
        // because the expensive half of the virtual network path (the
        // monitor-side translation) is charged by the profile's vNIC
        // overhead blocks — this avoids double counting.
        let net = NetStack::new(
            NetConfig {
                syscall_kernel_ops: 4,
                kernel_ops_per_frame: 4,
            },
            host.nic_model(),
        );
        let clock = GuestClock::new(GuestClockConfig {
            loss_fraction: cfg.profile.tick_loss,
            ..Default::default()
        });
        let rng = SimRng::new(cfg.seed);
        let vcpus = (0..cfg.vcpus.max(1))
            .map(|_| VcpuState::default())
            .collect();
        GuestVm {
            cfg,
            cpu,
            ops_per_sec,
            fs,
            net,
            clock,
            threads: Vec::new(),
            ready: VecDeque::new(),
            vcpus,
            rng,
        }
    }

    /// Number of virtual CPUs.
    pub fn vcpu_count(&self) -> usize {
        self.vcpus.len()
    }

    /// The profile of the hosting monitor.
    pub fn profile(&self) -> &VmmProfile {
        &self.cfg.profile
    }

    /// The vNIC mode in use.
    pub fn vnic_mode(&self) -> VnicMode {
        self.cfg.vnic_mode
    }

    /// Ethernet frames the virtual link needs for a `bytes`-sized
    /// transfer (what the NAT vNIC translates per frame).
    pub fn frames_for(&self, bytes: u64) -> u64 {
        self.net.nic().link.frames_for(bytes)
    }

    /// Spawn a guest thread.
    pub fn spawn(&mut self, name: impl Into<String>, body: Box<dyn ThreadBody>) -> ThreadId {
        let idx = self.threads.len();
        let rng = self.rng.fork(0x9000 + idx as u64);
        self.threads.push(GThread {
            name: name.into(),
            body: Some(body),
            pending: ActionResult::None,
            exec: None,
            state: GState::Ready,
            rng,
            quantum_left: self.cfg.quantum,
            cpu_time: SimDuration::ZERO,
            wake_at: None,
            joiners: Vec::new(),
        });
        self.ready.push_back(idx);
        ThreadId(idx as u32)
    }

    /// Guest-side CPU time of a guest thread (undilated guest work).
    pub fn guest_cpu_time(&self, tid: ThreadId) -> SimDuration {
        self.threads[tid.0 as usize].cpu_time
    }

    /// True when every guest thread exited.
    pub fn halted(&self) -> bool {
        !self.threads.is_empty() && self.threads.iter().all(|t| t.state == GState::Exited)
    }

    /// Ask the guest what vCPU `v` should do next. Must not be called
    /// while that vCPU has a compute piece or host operation outstanding.
    pub fn step(&mut self, v: usize, host_now: SimTime) -> GuestStep {
        self.clock.observe(host_now);
        // Outstanding host work queue first (multi-request FS plans).
        if let Some(step) = self.pending_host_step(v) {
            return step;
        }
        // Wake sleepers.
        for idx in 0..self.threads.len() {
            let th = &mut self.threads[idx];
            if th.state == GState::Blocked {
                if let Some(w) = th.wake_at {
                    if w <= host_now {
                        th.wake_at = None;
                        th.state = GState::Ready;
                        self.ready.push_back(idx);
                    }
                }
            }
        }
        // Ensure a current thread on this vCPU.
        if self.vcpus[v].current.is_none() {
            self.vcpus[v].current = self.ready.pop_front();
            if let Some(idx) = self.vcpus[v].current {
                let th = &mut self.threads[idx];
                th.state = GState::Running;
                if th.quantum_left <= SimDuration::from_nanos(1) {
                    th.quantum_left = self.cfg.quantum;
                }
            }
        }
        let Some(idx) = self.vcpus[v].current else {
            if self.halted() {
                return GuestStep::Halted;
            }
            let until = self
                .threads
                .iter()
                .filter(|t| t.state == GState::Blocked)
                .filter_map(|t| t.wake_at)
                .min();
            return GuestStep::Idle { until };
        };
        // Activation loop: pull actions until a timed one.
        if self.threads[idx].exec.is_none() {
            if let Some(step) = self.activate(v, idx, host_now) {
                return step;
            }
            // Thread blocked/exited/yielded during activation: recurse to
            // pick another (bounded by thread count, not unbounded: each
            // recursion retires at least one activation).
            return self.step(v, host_now);
        }
        // Slice off the next chunk of the current exec.
        let chunk = self.cfg.chunk;
        let th = &mut self.threads[idx];
        let exec = th.exec.as_mut().expect("checked above");
        assert!(exec.in_flight.is_none(), "step() with piece outstanding");
        let est = self.cpu.solo_estimate(&exec.block);
        let budget = chunk.min(th.quantum_left.max(SimDuration::from_millis(1)));
        let piece = if est.duration <= budget {
            std::mem::replace(&mut exec.block, OpBlock::int_alu(0))
        } else {
            let frac = budget.as_secs_f64() / est.duration.as_secs_f64();
            exec.block.split_off(frac)
        };
        let host_block = self.cfg.profile.dilate(&piece);
        exec.in_flight = Some(piece);
        GuestStep::Compute(host_block)
    }

    fn pending_host_step(&mut self, v: usize) -> Option<GuestStep> {
        match &self.vcpus[v].pending_host {
            Some(PendingHost::Disk { reqs, .. }) if !reqs.is_empty() => {
                let req = reqs.front().expect("non-empty");
                Some(GuestStep::DiskIo {
                    kind: req.kind,
                    offset: req.offset,
                    bytes: req.bytes,
                    overhead: self
                        .cfg
                        .profile
                        .disk_overhead_block(req.bytes, self.ops_per_sec),
                })
            }
            _ => None,
        }
    }

    /// Activation loop; returns a host step if the action needs one
    /// immediately (net ops), else None after installing exec/changing
    /// state.
    fn activate(&mut self, v: usize, idx: usize, host_now: SimTime) -> Option<GuestStep> {
        let mut fuse = 0;
        loop {
            fuse += 1;
            assert!(
                fuse < ACTIVATION_FUSE,
                "guest thread '{}' spinning on zero-time actions",
                self.threads[idx].name
            );
            let mut body = self.threads[idx].body.take().expect("body present");
            let result = std::mem::replace(&mut self.threads[idx].pending, ActionResult::None);
            let cpu_time = self.threads[idx].cpu_time;
            let action = {
                let th = &mut self.threads[idx];
                let mut ctx = ThreadCtx {
                    // Guest code sees the *guest* clock.
                    now: self.clock.now(),
                    result,
                    cpu_time,
                    me: ThreadId(idx as u32),
                    rng: &mut th.rng,
                };
                body.next(&mut ctx)
            };
            self.threads[idx].body = Some(body);
            match action {
                Action::Compute(block) => {
                    if self.cpu.solo_estimate(&block).duration.is_zero() {
                        self.threads[idx].pending = ActionResult::None;
                        continue;
                    }
                    // The guest mutates its copy as it slices work off,
                    // so unshare the body's handle here.
                    let block = std::rc::Rc::unwrap_or_clone(block);
                    self.threads[idx].exec = Some(GExec {
                        block,
                        in_flight: None,
                        cont: GCont::Resume,
                    });
                    return None;
                }
                Action::FileOpen {
                    path,
                    create,
                    truncate,
                    direct,
                } => {
                    let plan = self.fs.open(&path, create, truncate, direct);
                    self.install_plan(idx, plan.cpu, plan.disk, plan.result);
                    return None;
                }
                Action::FileRead { file, bytes } => {
                    let plan = self.fs.read(file, bytes);
                    self.install_plan(idx, plan.cpu, plan.disk, plan.result);
                    return None;
                }
                Action::FileWrite { file, bytes } => {
                    let plan = self.fs.write(file, bytes);
                    self.install_plan(idx, plan.cpu, plan.disk, plan.result);
                    return None;
                }
                Action::FileSync { file } => {
                    let plan = self.fs.sync(file);
                    self.install_plan(idx, plan.cpu, plan.disk, plan.result);
                    return None;
                }
                Action::FileSeek { file, pos } => {
                    let plan = self.fs.seek(file, pos);
                    self.install_plan(idx, plan.cpu, plan.disk, plan.result);
                    return None;
                }
                Action::FileClose { file } => {
                    let plan = self.fs.close(file);
                    self.install_plan(idx, plan.cpu, plan.disk, plan.result);
                    return None;
                }
                Action::FileDelete { path } => {
                    let plan = self.fs.delete(&path);
                    self.install_plan(idx, plan.cpu, plan.disk, plan.result);
                    return None;
                }
                Action::FileDropCache { file } => {
                    let plan = self.fs.drop_cache(file);
                    self.install_plan(idx, plan.cpu, plan.disk, plan.result);
                    return None;
                }
                Action::NetConnect { remote } => {
                    let plan = self.net.connect(remote);
                    let result = plan.result.clone();
                    self.threads[idx].exec = Some(GExec {
                        block: plan.cpu,
                        in_flight: None,
                        cont: GCont::Net(NetKind::Connect { remote, result }),
                    });
                    return None;
                }
                Action::NetSend { conn, bytes } => {
                    let plan = self.net.send(conn, bytes);
                    let result = plan.result.clone();
                    self.threads[idx].exec = Some(GExec {
                        block: plan.cpu,
                        in_flight: None,
                        cont: GCont::Net(NetKind::Send {
                            conn,
                            bytes,
                            result,
                        }),
                    });
                    return None;
                }
                Action::NetRecv { conn, bytes } => {
                    let plan = self.net.recv(conn, bytes);
                    let result = plan.result.clone();
                    self.threads[idx].exec = Some(GExec {
                        block: plan.cpu,
                        in_flight: None,
                        cont: GCont::Net(NetKind::Recv {
                            conn,
                            bytes,
                            result,
                        }),
                    });
                    return None;
                }
                Action::NetClose { conn } => {
                    let plan = self.net.close(conn);
                    let result = plan.result.clone();
                    self.threads[idx].exec = Some(GExec {
                        block: plan.cpu,
                        in_flight: None,
                        cont: GCont::Net(NetKind::Close { conn, result }),
                    });
                    return None;
                }
                Action::Sleep(d) => {
                    let th = &mut self.threads[idx];
                    th.pending = ActionResult::None;
                    th.state = GState::Blocked;
                    th.wake_at = Some(host_now + d);
                    self.vcpus[v].current = None;
                    return None;
                }
                Action::YieldCpu => {
                    let th = &mut self.threads[idx];
                    th.pending = ActionResult::None;
                    th.state = GState::Ready;
                    th.quantum_left = self.cfg.quantum;
                    self.ready.push_back(idx);
                    self.vcpus[v].current = None;
                    return None;
                }
                Action::Spawn { name, body, .. } => {
                    // Guest priorities are ignored: single-vCPU RR.
                    let tid = self.spawn(name, body);
                    self.threads[idx].pending = ActionResult::Spawned(tid);
                    continue;
                }
                Action::Join { thread } => {
                    let target = thread.0 as usize;
                    if self.threads[target].state == GState::Exited {
                        self.threads[idx].pending = ActionResult::Joined;
                        continue;
                    }
                    self.threads[target].joiners.push(idx);
                    self.threads[idx].state = GState::Blocked;
                    self.vcpus[v].current = None;
                    return None;
                }
                Action::Exit => {
                    let joiners = {
                        let th = &mut self.threads[idx];
                        th.state = GState::Exited;
                        std::mem::take(&mut th.joiners)
                    };
                    for j in joiners {
                        let jt = &mut self.threads[j];
                        if jt.state == GState::Blocked {
                            jt.pending = ActionResult::Joined;
                            jt.state = GState::Ready;
                            self.ready.push_back(j);
                        }
                    }
                    self.vcpus[v].current = None;
                    return None;
                }
            }
        }
    }

    fn install_plan(
        &mut self,
        idx: usize,
        cpu: OpBlock,
        disk: Vec<DiskRequest>,
        result: ActionResult,
    ) {
        let cont = if disk.is_empty() {
            GCont::Deliver(result)
        } else {
            GCont::Disk {
                reqs: disk.into(),
                result,
            }
        };
        self.threads[idx].exec = Some(GExec {
            block: cpu,
            in_flight: None,
            cont,
        });
    }

    /// The compute piece returned by the last [`GuestVm::step`] on vCPU
    /// `v` finished on the host at `host_now`. `serviced` is how much of
    /// the elapsed host time the vCPU thread actually executed (its
    /// CPU-time delta); the remainder was starvation, which costs guest
    /// timer ticks.
    pub fn complete_compute(&mut self, v: usize, host_now: SimTime, serviced: SimDuration) {
        self.clock.observe_with_service(host_now, serviced);
        let idx = self.vcpus[v].current.expect("a guest thread was computing");
        let quantum;
        let finished;
        {
            let th = &mut self.threads[idx];
            let exec = th.exec.as_mut().expect("exec present");
            let piece = exec.in_flight.take().expect("piece outstanding");
            let guest_secs = self.cpu.solo_estimate(&piece).duration;
            th.cpu_time += guest_secs;
            th.quantum_left = th.quantum_left.saturating_sub(guest_secs);
            quantum = th.quantum_left;
            finished = exec.block.is_empty();
        }
        if finished {
            let exec = self.threads[idx].exec.take().expect("present");
            match exec.cont {
                GCont::Resume => {
                    self.threads[idx].pending = ActionResult::None;
                }
                GCont::Deliver(r) => {
                    self.threads[idx].pending = r;
                }
                GCont::Disk { reqs, result } => {
                    self.threads[idx].state = GState::Blocked;
                    self.vcpus[v].pending_host = Some(PendingHost::Disk {
                        tid: idx,
                        reqs,
                        result,
                    });
                    self.vcpus[v].current = None;
                }
                GCont::Net(kind) => {
                    self.threads[idx].state = GState::Blocked;
                    self.vcpus[v].current = None;
                    self.start_net(v, idx, kind);
                }
            }
        } else if quantum <= SimDuration::from_nanos(1) && !self.ready.is_empty() {
            // Guest quantum rotation.
            let th = &mut self.threads[idx];
            th.state = GState::Ready;
            th.quantum_left = self.cfg.quantum;
            self.ready.push_back(idx);
            self.vcpus[v].current = None;
        }
    }

    fn start_net(&mut self, v: usize, idx: usize, kind: NetKind) {
        self.vcpus[v].pending_host = Some(PendingHost::Net { tid: idx });
        self.vcpus[v].pending_net_kind = Some(kind);
    }

    /// The net step corresponding to a pending net op (called by the body
    /// right after the compute that carried the guest stack work).
    fn net_step_for(&self, kind: &NetKind) -> GuestNetOp {
        let frames = |bytes: u64| self.net.nic().link.frames_for(bytes);
        let mode = self.cfg.vnic_mode;
        match kind {
            NetKind::Connect { remote, result } => {
                let ActionResult::Connected(c) = result else {
                    unreachable!("connect result")
                };
                GuestNetOp::Connect {
                    guest_conn: *c,
                    remote: *remote,
                    overhead: self
                        .cfg
                        .profile
                        .net_overhead_block(2, mode, self.ops_per_sec),
                }
            }
            NetKind::Send { conn, bytes, .. } => GuestNetOp::Send {
                guest_conn: *conn,
                bytes: *bytes,
                overhead: self.cfg.profile.net_overhead_block(
                    frames(*bytes),
                    mode,
                    self.ops_per_sec,
                ),
            },
            NetKind::Recv { conn, bytes, .. } => GuestNetOp::Recv {
                guest_conn: *conn,
                bytes: *bytes,
                overhead: self.cfg.profile.net_overhead_block(
                    frames(*bytes),
                    mode,
                    self.ops_per_sec,
                ),
            },
            NetKind::Close { conn, .. } => GuestNetOp::Close {
                guest_conn: *conn,
                overhead: self
                    .cfg
                    .profile
                    .net_overhead_block(1, mode, self.ops_per_sec),
            },
        }
    }

    /// A host I/O operation issued for the guest on vCPU `v` completed.
    /// I/O service gaps are fully serviced (the monitor keeps delivering
    /// ticks while the guest waits for its own devices).
    pub fn complete_io(&mut self, v: usize, host_now: SimTime) {
        self.clock.observe_with_service(host_now, SimDuration::MAX);
        match self.vcpus[v].pending_host.take() {
            Some(PendingHost::Disk {
                tid,
                mut reqs,
                result,
            }) => {
                reqs.pop_front().expect("a request was outstanding");
                if reqs.is_empty() {
                    self.deliver(tid, result);
                } else {
                    self.vcpus[v].pending_host = Some(PendingHost::Disk { tid, reqs, result });
                }
            }
            Some(PendingHost::Net { tid }) => {
                let kind = self.vcpus[v]
                    .pending_net_kind
                    .take()
                    .expect("net kind stashed with pending net");
                let result = match kind {
                    NetKind::Connect { result, .. }
                    | NetKind::Send { result, .. }
                    | NetKind::Recv { result, .. }
                    | NetKind::Close { result, .. } => result,
                };
                self.deliver(tid, result);
            }
            None => panic!("complete_io with no pending host operation"),
        }
    }

    fn deliver(&mut self, tid: usize, result: ActionResult) {
        let th = &mut self.threads[tid];
        th.pending = result;
        if th.state == GState::Blocked {
            th.state = GState::Ready;
            self.ready.push_back(tid);
        }
    }
}

// The net path needs GuestVm::step to surface NetOps: extend step's
// pending handling. (Separate impl block keeps the main flow readable.)
impl GuestVm {
    /// Like [`GuestVm::step`] but also surfacing pending network escapes.
    /// This is the entry point vCPU bodies should use.
    pub fn step_full(&mut self, v: usize, host_now: SimTime) -> GuestStep {
        if let Some(PendingHost::Net { .. }) = &self.vcpus[v].pending_host {
            // Surface the stashed network escape; the kind stays stashed
            // until complete_io so the guest-side result can be delivered.
            let kind = self.vcpus[v]
                .pending_net_kind
                .as_ref()
                .expect("net kind stashed with pending net");
            let op = self.net_step_for(kind);
            return GuestStep::Net(op);
        }
        self.step(v, host_now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgrid_machine::ops::OpBlock as OB;

    #[derive(Debug)]
    struct Burn {
        iters: u32,
    }
    impl ThreadBody for Burn {
        fn next(&mut self, _ctx: &mut ThreadCtx<'_>) -> Action {
            if self.iters == 0 {
                return Action::Exit;
            }
            self.iters -= 1;
            Action::compute(OB::int_alu(24_000_000)) // 4 ms guest
        }
    }

    fn guest(profile: VmmProfile) -> GuestVm {
        GuestVm::new(GuestConfig::new(profile), &MachineSpec::core2_duo_6600())
    }

    #[test]
    fn compute_steps_are_dilated() {
        let mut g = guest(VmmProfile::qemu());
        g.spawn("burn", Box::new(Burn { iters: 1 }));
        let step = g.step_full(0, SimTime::ZERO);
        let GuestStep::Compute(block) = step else {
            panic!("expected compute, got {step:?}")
        };
        // QEMU int dilation 2.95: 24M guest ops -> 70.8M host ops.
        assert_eq!(block.counts.int_ops, 70_800_000);
        g.complete_compute(0, SimTime::from_millis(10), SimDuration::MAX);
        let step = g.step_full(0, SimTime::from_millis(10));
        assert!(matches!(step, GuestStep::Halted), "{step:?}");
    }

    #[test]
    fn long_blocks_are_chunked() {
        let mut g = guest(VmmProfile::vmplayer());
        // 100 ms of guest work must surface in <= 5 ms chunks.
        #[derive(Debug)]
        struct Big;
        impl ThreadBody for Big {
            fn next(&mut self, ctx: &mut ThreadCtx<'_>) -> Action {
                if ctx.cpu_time.is_zero() {
                    Action::compute(OB::int_alu(600_000_000)) // 100 ms guest
                } else {
                    Action::Exit
                }
            }
        }
        g.spawn("big", Box::new(Big));
        let mut host = SimTime::ZERO;
        let mut chunks = 0;
        loop {
            match g.step_full(0, host) {
                GuestStep::Compute(b) => {
                    chunks += 1;
                    // <= 5 ms guest at 6e9 ops/s = 30M guest ops; dilated
                    // by 1.16 -> <= ~35M.
                    assert!(b.counts.int_ops <= 36_000_000, "chunk {}", b.counts.int_ops);
                    host += SimDuration::from_millis(6);
                    g.complete_compute(0, host, SimDuration::MAX);
                }
                GuestStep::Halted => break,
                other => panic!("unexpected {other:?}"),
            }
            assert!(chunks < 100, "too many chunks");
        }
        assert!(chunks >= 20, "expected ~20 chunks, got {chunks}");
    }

    #[test]
    fn guest_cpu_time_tracks_undilated_work() {
        let mut g = guest(VmmProfile::qemu());
        let tid = g.spawn("burn", Box::new(Burn { iters: 2 }));
        let mut host = SimTime::ZERO;
        loop {
            match g.step_full(0, host) {
                GuestStep::Compute(_) => {
                    host += SimDuration::from_millis(20);
                    g.complete_compute(0, host, SimDuration::MAX);
                }
                GuestStep::Halted => break,
                other => panic!("unexpected {other:?}"),
            }
        }
        // 2 x 24M int ops at 6e9 ops/s = 8 ms guest work, regardless of
        // QEMU's dilation.
        let t = g.guest_cpu_time(tid).as_millis_f64();
        assert!((t - 8.0).abs() < 0.5, "guest cpu {t} ms");
    }

    #[derive(Debug)]
    struct GuestWriter {
        phase: u8,
        file: Option<vgrid_os::FileId>,
    }
    impl ThreadBody for GuestWriter {
        fn next(&mut self, ctx: &mut ThreadCtx<'_>) -> Action {
            match self.phase {
                0 => {
                    self.phase = 1;
                    Action::FileOpen {
                        path: "/guest-data".into(),
                        create: true,
                        truncate: true,
                        direct: false,
                    }
                }
                1 => {
                    let ActionResult::Opened(id) = ctx.result else {
                        panic!("{:?}", ctx.result)
                    };
                    self.file = Some(id);
                    self.phase = 2;
                    Action::FileWrite {
                        file: id,
                        bytes: 1 << 20,
                    }
                }
                2 => {
                    self.phase = 3;
                    Action::FileSync {
                        file: self.file.expect("opened"),
                    }
                }
                _ => Action::Exit,
            }
        }
    }

    #[test]
    fn guest_file_sync_escapes_to_host_disk_io() {
        let mut g = guest(VmmProfile::vmplayer());
        g.spawn(
            "writer",
            Box::new(GuestWriter {
                phase: 0,
                file: None,
            }),
        );
        let mut host = SimTime::ZERO;
        let mut saw_disk_io = false;
        for _ in 0..200 {
            match g.step_full(0, host) {
                GuestStep::Compute(_) => {
                    host += SimDuration::from_millis(2);
                    g.complete_compute(0, host, SimDuration::MAX);
                }
                GuestStep::DiskIo {
                    kind,
                    bytes,
                    overhead,
                    ..
                } => {
                    saw_disk_io = true;
                    assert_eq!(kind, DiskRequestKind::Write);
                    assert_eq!(bytes, 1 << 20);
                    assert!(overhead.counts.int_ops > 0, "emulation costs CPU");
                    host += SimDuration::from_millis(20);
                    g.complete_io(0, host);
                }
                GuestStep::Halted => break,
                GuestStep::Idle { .. } => {
                    host += SimDuration::from_millis(1);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(saw_disk_io, "sync must reach the virtual disk");
        assert!(g.halted());
    }

    #[test]
    fn idle_guest_reports_wakeup() {
        #[derive(Debug)]
        struct Sleeper {
            done: bool,
        }
        impl ThreadBody for Sleeper {
            fn next(&mut self, _ctx: &mut ThreadCtx<'_>) -> Action {
                if self.done {
                    return Action::Exit;
                }
                self.done = true;
                Action::Sleep(SimDuration::from_millis(50))
            }
        }
        let mut g = guest(VmmProfile::virtualbox());
        g.spawn("sleeper", Box::new(Sleeper { done: false }));
        let step = g.step_full(0, SimTime::ZERO);
        let GuestStep::Idle { until } = step else {
            panic!("{step:?}")
        };
        assert_eq!(until, Some(SimTime::from_millis(50)));
        // After the wake time the thread exits.
        let step = g.step_full(0, SimTime::from_millis(60));
        assert!(matches!(step, GuestStep::Halted), "{step:?}");
    }

    #[test]
    fn guest_clock_lags_when_vcpu_starved() {
        let mut g = guest(VmmProfile::vmplayer());
        g.spawn("burn", Box::new(Burn { iters: 100 }));
        let mut host = SimTime::ZERO;
        for _ in 0..10 {
            match g.step_full(0, host) {
                GuestStep::Compute(_) => {
                    // Host starves the vCPU: each 4 ms chunk takes 500 ms,
                    // of which only ~5 ms was actual execution.
                    host += SimDuration::from_millis(500);
                    g.complete_compute(0, host, SimDuration::from_millis(5));
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(
            g.clock.total_lag() > SimDuration::from_millis(500),
            "lag {}",
            g.clock.total_lag()
        );
    }
}
